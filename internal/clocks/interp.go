// Package clocks implements the Section 8 clocks extension: a single
// implicit clock, `clocked async` activities registered on it, and
// the `next` split-phase barrier.
//
// The core pipeline (machine, types, constraints) treats clocked
// constructs by erasure — a barrier is skipped — which is sound for
// may-happen-in-parallel information because removing synchronization
// only adds interleavings. This package supplies what erasure loses:
//
//   - Interp, an activity-based small-step interpreter with the real
//     barrier semantics: a registered activity that executes next
//     blocks until every live registered activity is at a next, then
//     the clock advances one phase and all of them resume. Executing
//     next in an unregistered activity is a dynamic error (X10's
//     ClockUseException analogue), and a barrier that can never be
//     released — a registered activity stuck behind a finish whose
//     children wait on the clock — is detected and reported rather
//     than hanging.
//
//   - A phase analysis (phase.go) assigning static clock phases to
//     labels where they are unambiguous, which soundly removes MHP
//     pairs whose phases differ.
//
// The main activity is registered on the clock, as the spawner is in
// X10.
package clocks

import (
	"errors"
	"fmt"
	"math/rand"

	"fx10/internal/intset"
	"fx10/internal/syntax"
)

// ErrUnclockedNext is the dynamic error for next outside a registered
// activity.
var ErrUnclockedNext = errors.New("clocks: next executed by an unregistered activity")

// ErrClockDeadlock is reported when no activity can run and the
// barrier can never be released (e.g. a registered activity blocked
// in a finish whose children wait on the clock).
var ErrClockDeadlock = errors.New("clocks: barrier deadlock")

// ErrFuel is reported when the step budget is exhausted.
var ErrFuel = errors.New("clocks: step budget exhausted")

// frame is one entry of an activity's control stack: either a
// statement to run (S != nil) or a join point waiting for a finish
// scope to drain (Wait != nil).
type frame struct {
	S     *syntax.Stmt
	Scope *fscope // finish scope in effect for S's asyncs
	Wait  *fscope // when non-nil: block until Wait.live == 0, then pop
}

// fscope counts the activities transitively spawned under one finish
// that have not yet terminated.
type fscope struct {
	live int
}

// activity is one FX10 activity (the main activity or an async body).
type activity struct {
	id         int
	stack      []frame
	registered bool
	atBarrier  bool
	spawnScope *fscope // the finish scope this activity counts against
	place      int
}

func (a *activity) terminated() bool { return len(a.stack) == 0 }

// top returns the active frame.
func (a *activity) top() *frame { return &a.stack[len(a.stack)-1] }

// Interp executes clocked FX10 programs.
type Interp struct {
	p     *syntax.Program
	a     []int64
	acts  []*activity
	root  fscope
	phase int
	steps int
	rng   *rand.Rand

	// observed pairs of labels whose instructions were simultaneously
	// runnable (the clocked analogue of ∪ parallel(T)).
	pairs *intset.PairSet
	// phasesSeen[l] records every clock phase at which label l was
	// executed (used to validate the static phase analysis). Phases
	// beyond maxTrackedPhase are clamped.
	phasesSeen map[syntax.Label]map[int]bool
}

// New prepares an interpreter for p with the initial array a0 (nil =
// zeros) and a scheduling seed.
func New(p *syntax.Program, a0 []int64, seed int64) *Interp {
	in := &Interp{
		p:          p,
		a:          make([]int64, p.ArrayLen),
		rng:        rand.New(rand.NewSource(seed)),
		pairs:      intset.NewPairs(p.NumLabels()),
		phasesSeen: map[syntax.Label]map[int]bool{},
	}
	copy(in.a, a0)
	main := &activity{
		id:         0,
		stack:      []frame{{S: p.Main().Body, Scope: &in.root}},
		registered: true, // the spawner holds the implicit clock
		spawnScope: &in.root,
	}
	in.acts = []*activity{main}
	return in
}

// Result reports a completed clocked execution.
type Result struct {
	Array  []int64
	Steps  int
	Phases int // barrier releases
	// Pairs is the union over the run of symcross over the current
	// labels of simultaneously runnable activities.
	Pairs *intset.PairSet
}

// runnable reports whether the activity can take a step right now.
func (in *Interp) runnable(a *activity) bool {
	if a.terminated() || a.atBarrier {
		return false
	}
	f := a.top()
	if f.Wait != nil {
		return f.Wait.live == 0 // the join can fire
	}
	return true
}

// currentLabel returns the label the activity would execute next, if
// it is sitting on an instruction.
func (in *Interp) currentLabel(a *activity) (syntax.Label, bool) {
	if a.terminated() || a.top().S == nil {
		return syntax.NoLabel, false
	}
	return a.top().S.Instr.Label(), true
}

// recordParallel unions the pairwise cross of runnable activities'
// current labels.
func (in *Interp) recordParallel() {
	var ls []int
	for _, a := range in.acts {
		if in.runnable(a) {
			if l, ok := in.currentLabel(a); ok {
				ls = append(ls, int(l))
			}
		}
	}
	for i := 0; i < len(ls); i++ {
		for j := i + 1; j < len(ls); j++ {
			in.pairs.AddSym(ls[i], ls[j])
		}
	}
}

// step advances one runnable activity chosen at random. It reports
// whether anything ran.
func (in *Interp) step() (bool, error) {
	var ready []*activity
	for _, a := range in.acts {
		if in.runnable(a) {
			ready = append(ready, a)
		}
	}
	if len(ready) == 0 {
		return false, nil
	}
	in.recordParallel()
	a := ready[in.rng.Intn(len(ready))]
	return true, in.stepActivity(a)
}

func (in *Interp) stepActivity(a *activity) error {
	in.steps++
	f := a.top()

	// A satisfied join point.
	if f.Wait != nil {
		in.pop(a)
		return nil
	}

	s := f.S
	instr := s.Instr
	if l, ok := in.currentLabel(a); ok {
		seen := in.phasesSeen[l]
		if seen == nil {
			seen = map[int]bool{}
			in.phasesSeen[l] = seen
		}
		seen[in.phase] = true
	}
	advance := func() {
		f.S = s.Next
		if f.S == nil {
			in.pop(a)
		}
	}

	switch i := instr.(type) {
	case *syntax.Skip:
		advance()

	case *syntax.Assign:
		var v int64
		switch e := i.Rhs.(type) {
		case syntax.Const:
			v = e.C
		case syntax.Plus:
			v = in.a[e.D] + 1
		}
		in.a[i.D] = v
		advance()

	case *syntax.While:
		if in.a[i.D] == 0 {
			advance()
		} else {
			// Unroll: body . (while k), sharing the loop node.
			f.S = syntax.Seq(i.Body, s)
		}

	case *syntax.Call:
		f.S = syntax.Seq(in.p.Methods[i.Method].Body, s.Next)
		if f.S == nil {
			in.pop(a)
		}

	case *syntax.Async:
		place := a.place
		if i.Place != 0 {
			place = i.Place
		}
		child := &activity{
			id:         len(in.acts),
			stack:      []frame{{S: i.Body, Scope: f.Scope}},
			registered: i.Clocked,
			spawnScope: f.Scope,
			place:      place,
		}
		f.Scope.live++
		in.acts = append(in.acts, child)
		advance()

	case *syntax.Finish:
		inner := &fscope{}
		k := s.Next
		// Replace the current frame position: continue with k after
		// the join; run the body under the inner scope first.
		f.S = k
		if f.S == nil {
			// The finish is the frame's last instruction: the join
			// replaces the frame.
			*f = frame{Wait: inner, Scope: f.Scope}
			a.stack = append(a.stack, frame{S: i.Body, Scope: inner})
		} else {
			a.stack = append(a.stack, frame{Wait: inner, Scope: f.Scope})
			a.stack = append(a.stack, frame{S: i.Body, Scope: inner})
		}

	case *syntax.Next:
		if !a.registered {
			return fmt.Errorf("%w (label %s)", ErrUnclockedNext, in.p.LabelName(i.L))
		}
		// Park at the barrier; the release (possibly right now, if
		// this was the last registered activity to arrive) advances
		// every parked activity past its next.
		a.atBarrier = true
		in.tryReleaseBarrier()

	default:
		return fmt.Errorf("clocks: unknown instruction %T", instr)
	}
	return nil
}

// pop removes the finished top frame and credits the spawn scope when
// the whole activity terminates.
func (in *Interp) pop(a *activity) {
	a.stack = a.stack[:len(a.stack)-1]
	if a.terminated() {
		a.spawnScope.live--
	}
}

// tryReleaseBarrier releases the barrier iff at least one activity is
// parked at it and every live registered activity is parked. It
// reports whether the clock advanced. Termination of a registered
// activity can also make the barrier releasable, so Run retries this
// whenever execution stalls.
func (in *Interp) tryReleaseBarrier() bool {
	any := false
	for _, a := range in.acts {
		if a.registered && !a.terminated() {
			if !a.atBarrier {
				return false
			}
			any = true
		}
	}
	if any {
		in.releaseBarrier()
	}
	return any
}

// releaseBarrier advances the clock: every activity at the barrier
// moves past its next instruction.
func (in *Interp) releaseBarrier() {
	in.phase++
	for _, a := range in.acts {
		if !a.atBarrier {
			continue
		}
		a.atBarrier = false
		f := a.top()
		f.S = f.S.Next
		if f.S == nil {
			in.pop(a)
		}
	}
}

// blockedBarrierDeadlock diagnoses the stuck configuration: nothing
// runnable, somebody at the barrier, but some live registered
// activity is not at the barrier (it is blocked in a finish join that
// transitively waits on barrier-parked activities).
func (in *Interp) diagnose() error {
	anyLive := false
	anyAtBarrier := false
	for _, a := range in.acts {
		if !a.terminated() {
			anyLive = true
		}
		if a.atBarrier {
			anyAtBarrier = true
		}
	}
	if !anyLive {
		return nil // normal termination
	}
	if anyAtBarrier {
		return fmt.Errorf("%w: a registered activity is blocked in a finish while others wait at next (phase %d)", ErrClockDeadlock, in.phase)
	}
	// No one at the barrier and no one runnable with live activities:
	// impossible for well-formed programs (finish scopes always
	// drain), so report it loudly.
	return fmt.Errorf("%w: no runnable activity and no barrier to release", ErrClockDeadlock)
}

// Run executes to completion (or error) within the step budget.
func (in *Interp) Run(maxSteps int) (Result, error) {
	for in.steps < maxSteps {
		ran, err := in.step()
		if err != nil {
			return in.result(), err
		}
		if !ran {
			// A registered activity may have terminated since the
			// last arrival at the barrier; try releasing it before
			// concluding anything.
			if in.tryReleaseBarrier() {
				continue
			}
			if err := in.diagnose(); err != nil {
				return in.result(), err
			}
			return in.result(), nil // all terminated
		}
	}
	return in.result(), ErrFuel
}

func (in *Interp) result() Result {
	return Result{Array: in.a, Steps: in.steps, Phases: in.phase, Pairs: in.pairs}
}

// Run is the package-level convenience: execute p under a random
// schedule.
func Run(p *syntax.Program, a0 []int64, seed int64, maxSteps int) (Result, error) {
	return New(p, a0, seed).Run(maxSteps)
}

// PhasesSeen returns the phases at which the given label was observed
// executing during the run (for validating the static phase
// analysis).
func (in *Interp) PhasesSeen(l syntax.Label) []int {
	var out []int
	for ph := range in.phasesSeen[l] {
		out = append(out, ph)
	}
	return out
}
