package clocks

import (
	"errors"
	"testing"

	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// phased is the canonical split-phase program: two clocked workers
// write in phase 0, read each other's value in phase 1.
const phased = `
array 8;

void main() {
  C1: clocked async {
    W1: a[0] = 1;
    N1: next;
    R1: a[2] = a[1] + 1;
  }
  C2: clocked async {
    W2: a[1] = 1;
    N2: next;
    R2: a[3] = a[0] + 1;
  }
  N0: next;
  D: a[4] = 9;
}
`

func mustRun(t *testing.T, src string, seed int64) Result {
	t.Helper()
	p := parser.MustParse(src)
	res, err := Run(p, nil, seed, 100_000)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res
}

// The barrier guarantees the phase-1 reads observe the phase-0
// writes, under every schedule.
func TestBarrierOrdersPhases(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		res := mustRun(t, phased, seed)
		if res.Array[2] != 2 || res.Array[3] != 2 {
			t.Fatalf("seed %d: phase-1 reads missed phase-0 writes: %v", seed, res.Array)
		}
		if res.Phases < 1 {
			t.Fatalf("seed %d: no barrier release recorded", seed)
		}
	}
}

// Erasing the clock (the core machine semantics) admits executions
// the barrier forbids: run under the unclocked goroutine-free formal
// semantics and find a final state the clocked semantics cannot
// produce. This validates that the barrier actually constrains.
func TestErasureIsStrictlyWeaker(t *testing.T) {
	p := parser.MustParse(phased)
	// Under clock semantics a[3] is always 2; under erasure R2 may
	// read a[0] before W1 runs, giving a[3] = 1.
	found := false
	for seed := int64(0); seed < 400 && !found; seed++ {
		st := runErased(t, p, seed)
		if st[3] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("erased semantics never produced the unsynchronized outcome")
	}
}

func runErased(t *testing.T, p *syntax.Program, seed int64) []int64 {
	t.Helper()
	// Use the clocked interpreter itself but with registration
	// stripped, which is exactly clock erasure.
	q := parser.MustParse(eraseClocks(p))
	res, err := Run(q, nil, seed, 100_000)
	if err != nil {
		t.Fatalf("erased run: %v", err)
	}
	return res.Array
}

// eraseClocks prints the program with clocked asyncs downgraded and
// nexts dropped (replaced by skip via the core printer round trip).
func eraseClocks(p *syntax.Program) string {
	// Cheap and robust: print, then textually erase the extension
	// keywords. "clocked async" → "async"; "next;" → "skip;".
	src := syntax.Print(p)
	out := ""
	for _, line := range splitLines(src) {
		line = replaceAll(line, "clocked async", "async")
		line = replaceAll(line, "next;", "skip;")
		out += line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func replaceAll(s, old, new string) string {
	for {
		i := index(s, old)
		if i < 0 {
			return s
		}
		s = s[:i] + new + s[i+len(old):]
	}
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// A registered activity that terminates early must not block the
// barrier for the others.
func TestTerminatedActivityLeavesClock(t *testing.T) {
	src := `
array 4;
void main() {
  clocked async {
    a[0] = 1;
  }
  clocked async {
    next;
    a[1] = a[0] + 1;
  }
  next;
  a[2] = 5;
}
`
	for seed := int64(0); seed < 50; seed++ {
		res := mustRun(t, src, seed)
		if res.Array[2] != 5 {
			t.Fatalf("seed %d: main never passed the barrier: %v", seed, res.Array)
		}
	}
}

// Multiple barriers advance the phase counter.
func TestMultiplePhases(t *testing.T) {
	src := `
array 4;
void main() {
  clocked async {
    next;
    next;
    next;
    a[0] = 1;
  }
  next;
  next;
  next;
  a[1] = 2;
}
`
	res := mustRun(t, src, 3)
	if res.Phases != 3 {
		t.Fatalf("phases = %d, want 3", res.Phases)
	}
}

// next in an unregistered activity is the dynamic error X10 raises.
func TestUnclockedNextError(t *testing.T) {
	src := `
array 2;
void main() {
  async {
    N: next;
  }
  next;
}
`
	p := parser.MustParse(src)
	// The error is scheduling-dependent only in *when* it fires, not
	// whether: try several seeds, each must fail.
	for seed := int64(0); seed < 10; seed++ {
		_, err := Run(p, nil, seed, 100_000)
		if !errors.Is(err, ErrUnclockedNext) {
			t.Fatalf("seed %d: err = %v, want ErrUnclockedNext", seed, err)
		}
	}
}

// A registered activity blocked in a finish whose clocked child waits
// at the barrier is the classic clock/finish deadlock; it must be
// detected, not hung.
func TestClockFinishDeadlockDetected(t *testing.T) {
	src := `
array 2;
void main() {
  finish {
    clocked async {
      next;
      a[0] = 1;
    }
  }
  next;
}
`
	p := parser.MustParse(src)
	for seed := int64(0); seed < 10; seed++ {
		_, err := Run(p, nil, seed, 100_000)
		if !errors.Is(err, ErrClockDeadlock) {
			t.Fatalf("seed %d: err = %v, want ErrClockDeadlock", seed, err)
		}
	}
}

// Fuel exhaustion reports rather than spins.
func TestClockedFuel(t *testing.T) {
	src := `
array 2;
void main() {
  a[0] = 1;
  while (a[0] != 0) { skip; }
}
`
	p := parser.MustParse(src)
	if _, err := Run(p, nil, 1, 500); !errors.Is(err, ErrFuel) {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
}

// Finish inside clocked programs still joins correctly when no clock
// interaction occurs.
func TestFinishInsideClockedProgram(t *testing.T) {
	src := `
array 4;
void main() {
  clocked async {
    finish {
      async { a[0] = 7; }
    }
    a[1] = a[0] + 1;
    next;
  }
  next;
  a[2] = a[1] + 1;
}
`
	for seed := int64(0); seed < 50; seed++ {
		res := mustRun(t, src, seed)
		if res.Array[1] != 8 || res.Array[2] != 9 {
			t.Fatalf("seed %d: %v", seed, res.Array)
		}
	}
}

// The interpreter agrees with the core semantics on clock-free
// programs.
func TestAgreesWithCoreOnClockFree(t *testing.T) {
	src := `
array 4;
void main() {
  finish {
    async { a[0] = 1; }
    async { a[1] = 2; }
  }
  a[2] = a[0] + 1;
}
`
	for seed := int64(0); seed < 30; seed++ {
		res := mustRun(t, src, seed)
		if res.Array[0] != 1 || res.Array[1] != 2 || res.Array[2] != 2 {
			t.Fatalf("seed %d: %v", seed, res.Array)
		}
	}
}

// --- phase analysis ---

func phaseOf(t *testing.T, pi *PhaseInfo, p *syntax.Program, name string) Phase {
	t.Helper()
	l, ok := p.LabelByName(name)
	if !ok {
		t.Fatalf("label %s missing", name)
	}
	return pi.PhaseOf(l)
}

func TestPhaseAnalysisPhased(t *testing.T) {
	p := parser.MustParse(phased)
	pi := ComputePhases(p)
	wantKnown := map[string]int{
		"C1": 0, "C2": 0, "N0": 0, // spawns and main's barrier at phase 0
		"W1": 0, "W2": 0, "N1": 0, "N2": 0,
		"R1": 1, "R2": 1, // after one barrier
		"D": 1, // main after its next
	}
	for name, want := range wantKnown {
		ph := phaseOf(t, pi, p, name)
		got, ok := ph.IsKnown()
		if !ok || got != want {
			t.Errorf("phase(%s) = %v, want %d", name, ph, want)
		}
	}
}

func TestPhaseUnknownCases(t *testing.T) {
	p := parser.MustParse(`
array 4;
void main() {
  U: async {
    V: a[0] = 1;
  }
  W: while (a[1] != 0) {
    L: next;
  }
  Z: a[2] = 1;
}
`)
	pi := ComputePhases(p)
	// Inside an unregistered async: unknown.
	if _, ok := phaseOf(t, pi, p, "V").IsKnown(); ok {
		t.Fatalf("phase(V) should be unknown")
	}
	// Inside and after a barrier-passing loop: unknown.
	if _, ok := phaseOf(t, pi, p, "L").IsKnown(); ok {
		t.Fatalf("phase(L) should be unknown")
	}
	if _, ok := phaseOf(t, pi, p, "Z").IsKnown(); ok {
		t.Fatalf("phase(Z) should be unknown")
	}
	// The async spawn itself is at phase 0.
	if got, ok := phaseOf(t, pi, p, "U").IsKnown(); !ok || got != 0 {
		t.Fatalf("phase(U) = %v", phaseOf(t, pi, p, "U"))
	}
}

func TestPhaseThroughCallsAndMerging(t *testing.T) {
	p := parser.MustParse(`
array 4;
void stepper() {
  SN: next;
}
void worker() {
  WX: a[0] = 1;
}
void main() {
  A: worker();
  N: stepper();
  B: worker();
  C: a[1] = 1;
}
`)
	pi := ComputePhases(p)
	// worker is called at phases 0 and 1: its labels merge to unknown.
	if _, ok := phaseOf(t, pi, p, "WX").IsKnown(); ok {
		t.Fatalf("phase(WX) should be unknown (two call phases)")
	}
	// stepper passes one barrier; C is after it.
	if got, ok := phaseOf(t, pi, p, "C").IsKnown(); !ok || got != 1 {
		t.Fatalf("phase(C) = %v, want 1", phaseOf(t, pi, p, "C"))
	}
	if got, ok := phaseOf(t, pi, p, "SN").IsKnown(); !ok || got != 0 {
		t.Fatalf("phase(SN) = %v, want 0", phaseOf(t, pi, p, "SN"))
	}
}

func TestPhaseLatticeOps(t *testing.T) {
	if got := Known(2).Join(Known(2)); got != Known(2) {
		t.Fatalf("join same: %v", got)
	}
	if got := Known(1).Join(Known(2)); got != Unknown {
		t.Fatalf("join diff: %v", got)
	}
	if got := Unset.Join(Known(3)); got != Known(3) {
		t.Fatalf("join unset: %v", got)
	}
	if got := Known(3).Join(Unknown); got != Unknown {
		t.Fatalf("join unknown: %v", got)
	}
	if Unknown.String() != "?" || Unset.String() != "⊥" || Known(12).String() != "12" {
		t.Fatalf("phase strings wrong")
	}
}

func TestParserClockedRoundTrip(t *testing.T) {
	p := parser.MustParse(phased)
	printed := syntax.Print(p)
	q, err := parser.Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if syntax.Print(q) != printed {
		t.Fatalf("clocked print/parse not a fixpoint")
	}
	c1, _ := q.LabelByName("C1")
	if a, ok := q.Labels[c1].Instr.(*syntax.Async); !ok || !a.Clocked {
		t.Fatalf("clocked flag lost in round trip")
	}
}
