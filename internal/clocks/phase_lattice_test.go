package clocks

import "testing"

// The Phase lattice is flat: ⊥ below every Known(n) below ⊤. Join and
// Ordered are now exported (internal/constraints consumes them), so
// the algebraic laws they rely on are pinned here table-driven over a
// sample that exercises every state combination.

var latticeSamples = []Phase{
	Unset,
	Unknown,
	Known(0),
	Known(1),
	Known(2),
	Known(41),
}

func TestJoinIdempotent(t *testing.T) {
	for _, p := range latticeSamples {
		if got := p.Join(p); got != p {
			t.Errorf("%v ⊔ %v = %v, want %v", p, p, got, p)
		}
	}
}

func TestJoinCommutative(t *testing.T) {
	for _, p := range latticeSamples {
		for _, q := range latticeSamples {
			if pq, qp := p.Join(q), q.Join(p); pq != qp {
				t.Errorf("%v ⊔ %v = %v but %v ⊔ %v = %v", p, q, pq, q, p, qp)
			}
		}
	}
}

func TestJoinAssociative(t *testing.T) {
	for _, p := range latticeSamples {
		for _, q := range latticeSamples {
			for _, r := range latticeSamples {
				l := p.Join(q).Join(r)
				rr := p.Join(q.Join(r))
				if l != rr {
					t.Errorf("(%v ⊔ %v) ⊔ %v = %v but %v ⊔ (%v ⊔ %v) = %v",
						p, q, r, l, p, q, r, rr)
				}
			}
		}
	}
}

func TestJoinBottomIdentity(t *testing.T) {
	for _, p := range latticeSamples {
		if got := Unset.Join(p); got != p {
			t.Errorf("⊥ ⊔ %v = %v, want %v", p, got, p)
		}
		if got := p.Join(Unset); got != p {
			t.Errorf("%v ⊔ ⊥ = %v, want %v", p, got, p)
		}
	}
}

func TestJoinTopAbsorbs(t *testing.T) {
	for _, p := range latticeSamples {
		if got := Unknown.Join(p); got != Unknown {
			t.Errorf("⊤ ⊔ %v = %v, want ⊤", p, got)
		}
		if got := p.Join(Unknown); got != Unknown {
			t.Errorf("%v ⊔ ⊤ = %v, want ⊤", p, got)
		}
	}
}

func TestOrdered(t *testing.T) {
	cases := []struct {
		p, q Phase
		want bool
	}{
		{Known(0), Known(1), true},
		{Known(1), Known(0), true},
		{Known(2), Known(41), true},
		{Known(3), Known(3), false}, // same phase: may run in parallel
		{Unset, Known(1), false},    // no fact about ⊥
		{Known(1), Unset, false},
		{Unknown, Known(1), false}, // no fact about ⊤
		{Known(1), Unknown, false},
		{Unknown, Unknown, false},
		{Unset, Unset, false},
		{Unset, Unknown, false},
	}
	for _, c := range cases {
		if got := c.p.Ordered(c.q); got != c.want {
			t.Errorf("Ordered(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		// Ordered is symmetric by construction.
		if got := c.q.Ordered(c.p); got != c.want {
			t.Errorf("Ordered(%v, %v) = %v, want %v", c.q, c.p, got, c.want)
		}
	}
}

// Ordered must be consistent with Join: provably ordered phases are
// exactly the known, distinct pairs, which are also exactly the known
// pairs whose join is ⊤.
func TestOrderedAgreesWithJoin(t *testing.T) {
	for _, p := range latticeSamples {
		for _, q := range latticeSamples {
			_, pk := p.IsKnown()
			_, qk := q.IsKnown()
			want := pk && qk && p.Join(q) == Unknown
			if got := p.Ordered(q); got != want {
				t.Errorf("Ordered(%v, %v) = %v, want %v", p, q, got, want)
			}
		}
	}
}
