package clocks

import (
	"testing"

	"fx10/internal/explore"
	"fx10/internal/parser"
)

const exploreBudget = 1 << 20

// TestExploreSplitPhase: on the canonical split-phase program the
// exact clocked relation must drop the cross-phase pairs the erased
// relation contains, and be a subset of the erased relation (removing
// synchronization only adds interleavings).
func TestExploreSplitPhase(t *testing.T) {
	p := parser.MustParse(phased)
	res := Explore(p, nil, exploreBudget)
	if !res.Complete {
		t.Fatalf("exploration incomplete after %d states", res.States)
	}
	if !res.Terminated || res.Deadlocks != 0 || res.ClockErrors != 0 {
		t.Fatalf("terminated=%v deadlocks=%d clockErrors=%d, want clean termination",
			res.Terminated, res.Deadlocks, res.ClockErrors)
	}

	erased := explore.MHP(p, nil, exploreBudget)
	if !erased.Complete {
		t.Fatal("erased exploration incomplete")
	}
	if !res.MHP.SubsetOf(erased.MHP) {
		t.Error("clocked exact relation not a subset of the erased one")
	}

	w1, _ := p.LabelByName("W1")
	r2, _ := p.LabelByName("R2")
	w2, _ := p.LabelByName("W2")
	r1, _ := p.LabelByName("R1")
	if !erased.MHP.Has(int(w1), int(r2)) {
		t.Fatal("erased relation misses (W1, R2); test premise broken")
	}
	if res.MHP.Has(int(w1), int(r2)) || res.MHP.Has(int(w2), int(r1)) {
		t.Error("clocked exact relation keeps cross-phase pairs the barrier serializes")
	}
	// Same-phase parallelism survives.
	if !res.MHP.Has(int(w1), int(w2)) {
		t.Error("clocked exact relation lost the same-phase pair (W1, W2)")
	}
}

// TestExploreBarrierInFinishBody: a single registered activity that
// parks inside its own finish body must release the barrier — its
// dormant continuation after the join is the same activity, not a
// second registered one holding the clock.
func TestExploreBarrierInFinishBody(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  F: finish {
    W: a[0] = 1;
    N: next;
    X: a[1] = 1;
  }
  D: a[0] = 2;
}
`)
	res := Explore(p, nil, exploreBudget)
	if !res.Complete || !res.Terminated {
		t.Fatalf("complete=%v terminated=%v, want clean termination", res.Complete, res.Terminated)
	}
	if res.Deadlocks != 0 || res.ClockErrors != 0 {
		t.Fatalf("deadlocks=%d clockErrors=%d, want none", res.Deadlocks, res.ClockErrors)
	}
}

// TestExploreClockedFinishDeadlock: a registered activity blocked at a
// finish join while its clocked child waits at the barrier is the
// classic clocked-finish deadlock; every interleaving must get stuck.
func TestExploreClockedFinishDeadlock(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  F: finish {
    C: clocked async {
      N: next;
      W: a[0] = 1;
    }
  }
  D: a[1] = 1;
}
`)
	res := Explore(p, nil, exploreBudget)
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
	if res.Terminated {
		t.Error("deadlocked program reported a terminating interleaving")
	}
	if res.Deadlocks == 0 {
		t.Error("no deadlock state detected")
	}
}

// TestExploreUnclockedNext: next in an unregistered activity is the
// dynamic clock-use error; exploration reports it instead of stepping.
func TestExploreUnclockedNext(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  A: async {
    N: next;
    W: a[0] = 1;
  }
  D: a[1] = 1;
}
`)
	res := Explore(p, nil, exploreBudget)
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
	if res.ClockErrors == 0 {
		t.Error("unregistered next not reported as a clock error")
	}
}

// TestExploreAgreesWithInterp: every pair a randomized Interp run
// observes must be in the explorer's exact relation (observed ⊆
// exact), on both the split-phase program and a clock-free one.
func TestExploreAgreesWithInterp(t *testing.T) {
	srcs := []string{phased, `
array 4;
void main() {
  F: finish {
    A: async { W1: a[0] = 1; }
    W2: a[1] = 1;
  }
  D: a[2] = a[0] + 1;
}
`}
	for _, src := range srcs {
		p := parser.MustParse(src)
		res := Explore(p, nil, exploreBudget)
		if !res.Complete {
			t.Fatal("exploration incomplete")
		}
		for seed := int64(0); seed < 50; seed++ {
			it := New(p, nil, seed)
			r, err := it.Run(100000)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !r.Pairs.SubsetOf(res.MHP) {
				t.Fatalf("seed %d: observed pairs not ⊆ exact relation", seed)
			}
		}
	}
}
