package clocks_test

import (
	"fmt"

	"fx10/internal/clocks"
	"fx10/internal/parser"
)

// ExampleRun executes a split-phase clocked program: the barrier
// guarantees the phase-1 read sees the phase-0 write.
func ExampleRun() {
	p := parser.MustParse(`
array 4;
void main() {
  clocked async {
    a[0] = 41;
    next;
  }
  next;
  a[1] = a[0] + 1;
}
`)
	res, err := clocks.Run(p, nil, 7, 10_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("phases:", res.Phases)
	fmt.Println("a[1]:", res.Array[1])
	// Output:
	// phases: 1
	// a[1]: 42
}

// ExampleComputePhases shows the static phase analysis assigning
// barrier phases to labels.
func ExampleComputePhases() {
	p := parser.MustParse(`
array 2;
void main() {
  W: a[0] = 1;
  N: next;
  R: a[1] = a[0] + 1;
}
`)
	pi := clocks.ComputePhases(p)
	for _, name := range []string{"W", "N", "R"} {
		l, _ := p.LabelByName(name)
		fmt.Printf("phase(%s) = %v\n", name, pi.PhaseOf(l))
	}
	// Output:
	// phase(W) = 0
	// phase(N) = 0
	// phase(R) = 1
}
