// External test package: these tests drive the phase refinement
// against the constraint analysis, and internal/constraints imports
// internal/clocks (the solvers consume Phase codes), so an in-package
// test importing constraints would be an import cycle.
package clocks_test

import (
	"testing"

	"fx10/internal/clocks"
	"fx10/internal/constraints"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// phasedSrc is the canonical split-phase program (a copy of the
// in-package tests' `phased`): two clocked workers write in phase 0,
// read each other's value in phase 1.
const phasedSrc = `
array 8;

void main() {
  C1: clocked async {
    W1: a[0] = 1;
    N1: next;
    R1: a[2] = a[1] + 1;
  }
  C2: clocked async {
    W2: a[1] = 1;
    N2: next;
    R2: a[3] = a[0] + 1;
  }
  N0: next;
  D: a[4] = 9;
}
`

func TestPhaseRefinementDropsCrossPhasePairs(t *testing.T) {
	p := parser.MustParse(phasedSrc)
	sys := constraints.Generate(labels.Compute(p), constraints.ContextSensitive)
	sys.Phases = nil
	sys.PhaseCode = nil
	m := sys.Solve(constraints.Options{}).MainM()
	pi := clocks.ComputePhases(p)
	refined := pi.Refine(m)

	w1, _ := p.LabelByName("W1")
	r2, _ := p.LabelByName("R2")
	w2, _ := p.LabelByName("W2")
	r1, _ := p.LabelByName("R1")

	// The erased analysis pairs W1 with R2 (and W2 with R1)…
	if !m.Has(int(w1), int(r2)) || !m.Has(int(w2), int(r1)) {
		t.Fatalf("erased analysis missing expected pairs: %v", m)
	}
	// …but the barrier separates phases 0 and 1.
	if refined.Has(int(w1), int(r2)) || refined.Has(int(w2), int(r1)) {
		t.Fatalf("phase refinement kept cross-phase pairs")
	}
	// Same-phase parallelism survives: W1 ∥ W2 and R1 ∥ R2.
	if !refined.Has(int(w1), int(w2)) || !refined.Has(int(r1), int(r2)) {
		t.Fatalf("phase refinement dropped same-phase pairs")
	}
	if !refined.SubsetOf(m) {
		t.Fatalf("refinement not a subset")
	}
}

// Soundness of the refinement against the clocked interpreter: every
// dynamically observed simultaneous pair is in the refined set, and
// every Known-phase label only executes at its computed phase.
func TestPhaseRefinementSoundness(t *testing.T) {
	srcs := []string{
		phasedSrc,
		`
array 4;
void main() {
  clocked async {
    X1: a[0] = 1;
    XN: next;
    X2: a[1] = 1;
  }
  Y1: a[2] = 1;
  YN: next;
  Y2: a[3] = 1;
}
`,
	}
	for si, src := range srcs {
		p := parser.MustParse(src)
		sys := constraints.Generate(labels.Compute(p), constraints.ContextSensitive)
		sys.Phases = nil
		sys.PhaseCode = nil
		m := sys.Solve(constraints.Options{}).MainM()
		pi := clocks.ComputePhases(p)
		refined := pi.Refine(m)
		for seed := int64(0); seed < 60; seed++ {
			it := clocks.New(p, nil, seed)
			res, err := it.Run(100_000)
			if err != nil {
				t.Fatalf("src %d seed %d: %v", si, seed, err)
			}
			if !res.Pairs.SubsetOf(refined) {
				t.Fatalf("src %d seed %d: dynamic pairs %v ⊄ refined %v", si, seed, res.Pairs, refined)
			}
			for l := 0; l < p.NumLabels(); l++ {
				want, ok := pi.PhaseOf(syntax.Label(l)).IsKnown()
				if !ok {
					continue
				}
				for _, got := range it.PhasesSeen(syntax.Label(l)) {
					if got != want {
						t.Fatalf("src %d: label %s executed at phase %d, analysis says %d",
							si, p.LabelName(syntax.Label(l)), got, want)
					}
				}
			}
		}
	}
}

// The phase pruning built into the solvers (crossSym's filter) must
// agree exactly with the post-hoc Refine of a clock-blind solve: the
// level-2 system is a pure union lattice and every pair enters via a
// cross term, so filtering at the source commutes with refinement.
func TestSolverPruningEqualsPostHocRefine(t *testing.T) {
	p := parser.MustParse(phasedSrc)
	for _, mode := range []constraints.Mode{constraints.ContextSensitive, constraints.ContextInsensitive} {
		aware := constraints.Generate(labels.Compute(p), mode).Solve(constraints.Options{}).MainM()

		blind := constraints.Generate(labels.Compute(p), mode)
		blind.Phases = nil
		blind.PhaseCode = nil
		refined := clocks.ComputePhases(p).Refine(blind.Solve(constraints.Options{}).MainM())

		if !aware.Equal(refined) {
			t.Errorf("mode %v: built-in pruning ≠ post-hoc refinement:\n aware: %v\nrefined: %v",
				mode, aware, refined)
		}
	}
}
