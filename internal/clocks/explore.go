package clocks

import (
	"fmt"
	"strings"

	"fx10/internal/intset"
	"fx10/internal/syntax"
)

// Exhaustive exploration of clocked programs: the clocked analogue of
// internal/explore, enumerating every interleaving under the real
// barrier semantics with state deduplication. The result's MHP is the
// exact may-happen-in-parallel relation of the clocked program — the
// ground truth the phase-aware analysis is measured against, the way
// the erased explorer serves the core analysis.
//
// States extend the paper's execution trees with clock bookkeeping:
// each leaf carries its activity's registration and whether it is
// parked at the barrier, and each ▷ node remembers the registration of
// the activity that executed the finish. That last bit is what the
// erased tree loses and the barrier needs: a registered activity
// blocked at a finish join (its body thread terminated, children still
// running) must HOLD the barrier — X10's clocked-finish deadlock —
// while the dormant continuation of an activity whose body thread is
// itself parked at the barrier must not be double-counted as a second
// live activity. The two cases are distinguished by whether the fin's
// spine thread has terminated (see spineDone).
//
// The clock's phase counter is deliberately NOT part of the state key:
// the observable pair relation does not depend on the absolute phase,
// and keying on it would make any program with next inside a loop
// explore an unbounded space.

// ctree is a clocked execution tree.
type ctree interface{ isCtree() }

// cdone is √.
type cdone struct{}

// cleaf is ⟨s⟩ running in an activity with the given clock
// registration; Parked means the activity sits at a next waiting for
// the barrier.
type cleaf struct {
	S      *syntax.Stmt
	Reg    bool
	Parked bool
}

// cfin is T1 ▷ T2. Reg is the registration of the activity that
// executed the finish (the spine activity of L, resumed as R).
type cfin struct {
	L, R ctree
	Reg  bool
}

// cpar is T1 ∥ T2 (L is the spawned activity, R the spawner).
type cpar struct{ L, R ctree }

func (cdone) isCtree() {}
func (*cleaf) isCtree() {}
func (*cfin) isCtree()  {}
func (*cpar) isCtree()  {}

// cstate is one explored configuration.
type cstate struct {
	a []int64
	t ctree
}

func (st cstate) key() string {
	var b strings.Builder
	fmt.Fprint(&b, st.a)
	b.WriteByte('|')
	writeCKey(&b, st.t)
	return b.String()
}

func writeCKey(b *strings.Builder, t ctree) {
	switch t := t.(type) {
	case cdone:
		b.WriteByte('D')
	case *cleaf:
		b.WriteByte('<')
		for cur := t.S; cur != nil; cur = cur.Next {
			fmt.Fprintf(b, "%d,", int(cur.Instr.Label()))
		}
		if t.Reg {
			b.WriteByte('R')
		}
		if t.Parked {
			b.WriteByte('B')
		}
		b.WriteByte('>')
	case *cfin:
		b.WriteByte('F')
		if t.Reg {
			b.WriteByte('R')
		}
		b.WriteByte('(')
		writeCKey(b, t.L)
		b.WriteByte(',')
		writeCKey(b, t.R)
		b.WriteByte(')')
	case *cpar:
		b.WriteString("P(")
		writeCKey(b, t.L)
		b.WriteByte(',')
		writeCKey(b, t.R)
		b.WriteByte(')')
	}
}

// spineDone reports whether the spine activity of t — the thread of
// the activity that created t's root — has terminated. The spine of a
// ∥ node is its right side (the spawner); a ▷ node's spine is alive
// as long as the node exists (it is either inside L or waiting at the
// join).
func spineDone(t ctree) bool {
	switch t := t.(type) {
	case cdone:
		return true
	case *cleaf:
		return false
	case *cfin:
		return false
	case *cpar:
		return spineDone(t.R)
	}
	return false
}

// clockCensus tallies what the barrier release decision needs:
// whether any registered activity is runnable or join-blocked, and
// how many activities are parked at the barrier. The R side of a ▷ is
// dormant continuation code, not a live activity, so it is never
// walked — but when the fin's spine thread inside L has terminated,
// the activity itself is waiting at the join and counts as blocked.
func clockCensus(t ctree, runningReg, joinBlockedReg *bool, parked *int) {
	switch t := t.(type) {
	case cdone:
	case *cleaf:
		if t.Parked {
			*parked++
		} else if t.Reg {
			*runningReg = true
		}
	case *cfin:
		clockCensus(t.L, runningReg, joinBlockedReg, parked)
		if t.Reg && spineDone(t.L) {
			*joinBlockedReg = true
		}
	case *cpar:
		clockCensus(t.L, runningReg, joinBlockedReg, parked)
		clockCensus(t.R, runningReg, joinBlockedReg, parked)
	}
}

// releaseBarrier returns t with every parked leaf advanced past its
// next, or t unchanged (structurally shared) when nothing is parked.
func releaseBarrier(t ctree) ctree {
	switch t := t.(type) {
	case cdone:
		return t
	case *cleaf:
		if !t.Parked {
			return t
		}
		if t.S.Next == nil {
			return cdone{}
		}
		return &cleaf{S: t.S.Next, Reg: t.Reg}
	case *cfin:
		return &cfin{L: releaseBarrier(t.L), R: t.R, Reg: t.Reg}
	case *cpar:
		return &cpar{L: releaseBarrier(t.L), R: releaseBarrier(t.R)}
	}
	return t
}

// firstLabels collects the current labels of the active (unparked,
// non-dormant) leaves of t.
func firstLabels(t ctree, out *intset.Set) {
	switch t := t.(type) {
	case cdone:
	case *cleaf:
		if !t.Parked {
			out.Add(int(t.S.Instr.Label()))
		}
	case *cfin:
		firstLabels(t.L, out) // R is dormant until the join fires
	case *cpar:
		firstLabels(t.L, out)
		firstLabels(t.R, out)
	}
}

// addParallel unions into dst the symmetric cross of active first
// labels across every ∥ node — parallel(T) of the paper, restricted
// to activities the barrier has not parked (matching what Interp
// observes: a parked activity has no current instruction).
func addParallel(dst *intset.PairSet, n int, t ctree) {
	switch t := t.(type) {
	case *cfin:
		addParallel(dst, n, t.L)
	case *cpar:
		addParallel(dst, n, t.L)
		addParallel(dst, n, t.R)
		l, r := intset.New(n), intset.New(n)
		firstLabels(t.L, l)
		firstLabels(t.R, r)
		dst.CrossSym(l, r)
	}
}

// cleafOf returns ⟨k⟩ for the same activity, or √ when the
// continuation is empty.
func cleafOf(k *syntax.Stmt, reg bool) ctree {
	if k == nil {
		return cdone{}
	}
	return &cleaf{S: k, Reg: reg}
}

// csucc enumerates the one-step successors of (a, t). clockErr is set
// when some interleaving executes next in an unregistered activity
// (X10's ClockUseException); that branch is not expanded.
func csucc(p *syntax.Program, a []int64, t ctree) (out []cstate, clockErr bool) {
	switch t := t.(type) {
	case cdone:
		return nil, false

	case *cfin:
		if _, isDone := t.L.(cdone); isDone {
			return []cstate{{a: a, t: t.R}}, false
		}
		succ, ce := csucc(p, a, t.L)
		for _, s := range succ {
			out = append(out, cstate{a: s.a, t: &cfin{L: s.t, R: t.R, Reg: t.Reg}})
		}
		return out, ce

	case *cpar:
		if _, isDone := t.L.(cdone); isDone {
			out = append(out, cstate{a: a, t: t.R})
		}
		// T ∥ √ → T collapses the terminated spine side — but only when
		// it does not falsify spineDone for an enclosing ▷: promoting a
		// live child into spine position would hide a join-blocked
		// registered spawner from the barrier census (the clocked-finish
		// deadlock would wrongly release). The node is kept instead; it
		// disappears via √ ∥ √ → √ once the child also terminates.
		if _, isDone := t.R.(cdone); isDone && spineDone(t.L) {
			out = append(out, cstate{a: a, t: t.L})
		}
		ls, ce1 := csucc(p, a, t.L)
		for _, s := range ls {
			out = append(out, cstate{a: s.a, t: &cpar{L: s.t, R: t.R}})
		}
		rs, ce2 := csucc(p, a, t.R)
		for _, s := range rs {
			out = append(out, cstate{a: s.a, t: &cpar{L: t.L, R: s.t}})
		}
		return out, ce1 || ce2

	case *cleaf:
		return csuccLeaf(p, a, t)
	}
	return nil, false
}

func csuccLeaf(p *syntax.Program, a []int64, lf *cleaf) ([]cstate, bool) {
	if lf.Parked {
		return nil, false // only the global barrier release moves it
	}
	s := lf.S
	k := s.Next
	switch i := s.Instr.(type) {
	case *syntax.Skip:
		return []cstate{{a: a, t: cleafOf(k, lf.Reg)}}, false

	case *syntax.Assign:
		na := make([]int64, len(a))
		copy(na, a)
		switch e := i.Rhs.(type) {
		case syntax.Const:
			na[i.D] = e.C
		case syntax.Plus:
			na[i.D] = a[e.D] + 1
		}
		return []cstate{{a: na, t: cleafOf(k, lf.Reg)}}, false

	case *syntax.While:
		if a[i.D] == 0 {
			return []cstate{{a: a, t: cleafOf(k, lf.Reg)}}, false
		}
		return []cstate{{a: a, t: &cleaf{S: syntax.Seq(i.Body, s), Reg: lf.Reg}}}, false

	case *syntax.Call:
		return []cstate{{a: a, t: &cleaf{S: syntax.Seq(p.Methods[i.Method].Body, k), Reg: lf.Reg}}}, false

	case *syntax.Async:
		child := &cleaf{S: i.Body, Reg: i.Clocked}
		return []cstate{{a: a, t: &cpar{L: child, R: cleafOf(k, lf.Reg)}}}, false

	case *syntax.Finish:
		body := &cleaf{S: i.Body, Reg: lf.Reg}
		return []cstate{{a: a, t: &cfin{L: body, R: cleafOf(k, lf.Reg), Reg: lf.Reg}}}, false

	case *syntax.Next:
		if !lf.Reg {
			return nil, true // dynamic clock-use error; branch halts
		}
		return []cstate{{a: a, t: &cleaf{S: s, Reg: true, Parked: true}}}, false
	}
	panic(fmt.Sprintf("clocks: unknown instruction %T", s.Instr))
}

// ExploreResult is the outcome of an exhaustive clocked exploration.
type ExploreResult struct {
	// MHP is the exact may-happen-in-parallel relation under the
	// barrier semantics (union of parallel(T) over visited states).
	MHP *intset.PairSet
	// States and Steps count distinct states and examined transitions.
	States, Steps int
	// Complete is false when the state budget ran out; MHP is then a
	// lower bound.
	Complete bool
	// Terminated reports whether some interleaving ran to completion.
	Terminated bool
	// Deadlocks counts distinct states where no activity can step and
	// the barrier cannot be released (clocked finish deadlock).
	Deadlocks int
	// ClockErrors counts states where some interleaving executes next
	// in an unregistered activity.
	ClockErrors int
}

// Explore enumerates the reachable clocked state space of p from the
// initial array a0 (nil = zeros), visiting at most maxStates distinct
// states. The main activity is registered on the implicit clock, as
// in X10.
func Explore(p *syntax.Program, a0 []int64, maxStates int) ExploreResult {
	n := p.NumLabels()
	res := ExploreResult{MHP: intset.NewPairs(n)}

	a := make([]int64, p.ArrayLen)
	copy(a, a0)
	start := cstate{a: a, t: &cleaf{S: p.Main().Body, Reg: true}}

	seen := map[string]bool{start.key(): true}
	frontier := []cstate{start}

	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		res.States++

		addParallel(res.MHP, n, cur.t)
		if _, isDone := cur.t.(cdone); isDone {
			res.Terminated = true
			continue
		}

		succ, clockErr := csucc(p, cur.a, cur.t)
		if clockErr {
			res.ClockErrors++
		}
		// The barrier release is a global transition: enabled when at
		// least one activity is parked and every registered activity is
		// either parked or terminated (a registered activity that is
		// runnable, or blocked at a finish join, holds the clock).
		var runningReg, joinBlockedReg bool
		parked := 0
		clockCensus(cur.t, &runningReg, &joinBlockedReg, &parked)
		if parked > 0 && !runningReg && !joinBlockedReg {
			succ = append(succ, cstate{a: cur.a, t: releaseBarrier(cur.t)})
		}

		if len(succ) == 0 && !clockErr {
			res.Deadlocks++
		}
		res.Steps += len(succ)
		for _, s := range succ {
			k := s.key()
			if seen[k] {
				continue
			}
			if res.States+len(frontier) >= maxStates {
				return res
			}
			seen[k] = true
			frontier = append(frontier, s)
		}
	}
	res.Complete = true
	return res
}
