package condensed

import (
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/labels"
	"fx10/internal/syntax"
)

// unit builds: main { finish { async { skip } }  if { call f } else { return } }
// f { loop { async(1) { skip } } }
func testUnit() *Unit {
	return &Unit{Methods: []*MethodDecl{
		{Name: "main", Body: []*Node{
			{Kind: Finish, Body: []*Node{
				{Kind: Async, Body: []*Node{{Kind: Skip}}},
			}},
			{Kind: If,
				Body: []*Node{{Kind: Call, Callee: "f"}},
				Else: []*Node{{Kind: Return}},
			},
		}},
		{Name: "f", Body: []*Node{
			{Kind: Loop, Body: []*Node{
				{Kind: Async, Place: 1, Body: []*Node{{Kind: Skip}}},
			}},
		}},
	}}
}

func TestNodeCounts(t *testing.T) {
	c := testUnit().NodeCounts()
	want := map[Kind]int{
		Method: 2, Finish: 1, Async: 2, Skip: 2, If: 1, Call: 1,
		Return: 1, Loop: 1, Switch: 0,
		// End: main body, finish body, async body, then, else,
		// f body, loop body, inner async body = 8.
		End: 8,
	}
	for k, w := range want {
		if c.Of(k) != w {
			t.Fatalf("%v count = %d, want %d", k, c.Of(k), w)
		}
	}
	if c.Total != 2+1+2+2+1+1+1+1+8 {
		t.Fatalf("total = %d", c.Total)
	}
}

func TestAsyncStats(t *testing.T) {
	s := testUnit().AsyncStats()
	// The finish-wrapped async is plain; the loop async in f is a
	// loop async (even though place-switching: loop wins).
	if s.Total != 2 || s.Plain != 1 || s.Loop != 1 || s.PlaceSwitch != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAsyncStatsFinishCutsLoop(t *testing.T) {
	u := &Unit{Methods: []*MethodDecl{{Name: "main", Body: []*Node{
		{Kind: Loop, Body: []*Node{
			{Kind: Finish, Body: []*Node{
				{Kind: Async, Place: 1, Body: []*Node{{Kind: Skip}}},
			}},
		}},
	}}}}
	s := u.AsyncStats()
	// Finish between loop and async: not a loop async; its place
	// annotation makes it place-switching.
	if s.Loop != 0 || s.PlaceSwitch != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAsyncStatsNestedAsyncInLoop(t *testing.T) {
	u := &Unit{Methods: []*MethodDecl{{Name: "main", Body: []*Node{
		{Kind: Loop, Body: []*Node{
			{Kind: Async, Body: []*Node{
				{Kind: Async, Body: []*Node{{Kind: Skip}}},
			}},
		}},
	}}}}
	s := u.AsyncStats()
	if s.Loop != 2 {
		t.Fatalf("nested async in loop must also count as loop async: %+v", s)
	}
}

func TestLowerShape(t *testing.T) {
	p := MustLower(testUnit())
	if err := syntax.Validate(p); err != nil {
		t.Fatalf("lowered program invalid: %v", err)
	}
	// One instruction per non-End node: finish, async, skip, if-skip,
	// call, return-skip in main = 6; loop, async, skip in f = 3.
	count := 0
	p.EachInstr(func(_ int, _ syntax.Instr) { count++ })
	nonEnd := testUnit().NodeCounts()
	if want := nonEnd.Total - nonEnd.Of(End) - nonEnd.Of(Method); count != want {
		t.Fatalf("lowered instruction count = %d, want %d", count, want)
	}
	// The place annotation survives.
	foundPlaced := false
	p.EachInstr(func(_ int, i syntax.Instr) {
		if a, ok := i.(*syntax.Async); ok && a.Place == 1 {
			foundPlaced = true
		}
	})
	if !foundPlaced {
		t.Fatalf("place-switching async lost in lowering")
	}
}

func TestLoweredProgramAnalyzes(t *testing.T) {
	p := MustLower(testUnit())
	in := labels.Compute(p)
	sol := constraints.Generate(in, constraints.ContextSensitive).Solve(constraints.Options{})
	// The loop async's body in f pairs with itself (the async
	// instruction spawns a body each iteration).
	var selfFound bool
	m := sol.MainM()
	for _, a := range p.AsyncLabels() {
		in.Slabels(syntax.Body(p.Labels[a].Instr)).Each(func(e int) {
			if m.Has(e, e) {
				selfFound = true
			}
		})
	}
	if !selfFound {
		t.Fatalf("loop async body self pair missing after lowering")
	}
}

func TestLowerEmptyBodies(t *testing.T) {
	u := &Unit{Methods: []*MethodDecl{{Name: "main", Body: []*Node{
		{Kind: Finish, Body: nil},
		{Kind: Async, Body: []*Node{{Kind: End}}},
	}}}}
	p := MustLower(u)
	if err := syntax.Validate(p); err != nil {
		t.Fatalf("empty bodies not padded: %v", err)
	}
}

func TestLowerEmptyMethod(t *testing.T) {
	u := &Unit{Methods: []*MethodDecl{{Name: "main", Body: nil}}}
	p := MustLower(u)
	if p.Main().Body == nil {
		t.Fatalf("empty method body not padded")
	}
}

func TestLowerUnknownCalleeFails(t *testing.T) {
	u := &Unit{Methods: []*MethodDecl{{Name: "main", Body: []*Node{
		{Kind: Call, Callee: "missing"},
	}}}}
	if _, err := Lower(u); err == nil {
		t.Fatalf("unresolved callee must fail lowering")
	}
}

func TestSwitchLowering(t *testing.T) {
	u := &Unit{Methods: []*MethodDecl{{Name: "main", Body: []*Node{
		{Kind: Switch, Cases: [][]*Node{
			{{Kind: Skip}},
			{{Kind: Async, Body: []*Node{{Kind: Skip}}}},
		}},
	}}}}
	p := MustLower(u)
	// switch-skip + case-1 skip + async + inner skip = 4 instructions.
	count := 0
	p.EachInstr(func(_ int, _ syntax.Instr) { count++ })
	if count != 4 {
		t.Fatalf("switch lowering produced %d instructions, want 4", count)
	}
}

func TestKindString(t *testing.T) {
	if End.String() != "end" || Switch.String() != "switch" || Method.String() != "method" {
		t.Fatalf("kind strings wrong")
	}
	if Kind(99).String() == "end" {
		t.Fatalf("unknown kind collides")
	}
}
