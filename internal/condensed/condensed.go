// Package condensed implements the condensed program form the
// paper's implementation analyzes (Section 6, Figure 7): a tree of
// ten node kinds — end, async, call, finish, if, loop, method,
// return, skip, switch — produced from X10 source by internal/x10,
// plus the lowering from condensed form to core FX10 that the
// analysis pipeline consumes. The Section 8 clocks extension adds an
// eleventh kind, advance (the clock barrier), and a Clocked flag on
// async nodes; both survive lowering so the static phase analysis
// sees them.
//
// Lowering is one FX10 instruction per non-End node, which reproduces
// the paper's accounting where the number of Slabels (and level-2)
// constraints equals the number of non-End nodes:
//
//   - skip, return and compute statements lower to skip (a return's
//     early exit is ignored — a conservative approximation);
//   - call lowers to a call, async to an async (with its place
//     annotation), finish to a finish;
//   - loop lowers to a while on a synthesized guard cell — the
//     analysis is value-insensitive, so the guard's meaning is
//     irrelevant;
//   - if and switch lower to a skip carrying the node's label
//     followed by the branches in sequence, which conservatively
//     lets the analysis see every branch;
//   - advance lowers to the core next barrier, and a clocked async
//     lowers to a clocked async;
//   - end nodes are placeholders and lower to nothing.
package condensed

import (
	"fmt"

	"fx10/internal/syntax"
)

// Kind enumerates the ten condensed node kinds of Figure 7, plus
// Advance, the Section 8 clock barrier (X10's `next`/`advance`).
type Kind int

// Node kinds, alphabetically as in Figure 7's columns; the clocks
// extension's Advance comes after, keeping Figure 7's column indices
// stable.
const (
	End Kind = iota
	Async
	Call
	Finish
	If
	Loop
	Method
	Return
	Skip
	Switch
	Advance
	numKinds
)

var kindNames = [...]string{"end", "async", "call", "finish", "if", "loop", "method", "return", "skip", "switch", "advance"}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Node is one condensed-form node.
type Node struct {
	Kind  Kind
	Label string // optional display label; auto-generated when empty
	// Body is the block of async/finish/loop nodes and the then-
	// branch of if.
	Body []*Node
	// Else is if's else-branch (may be nil).
	Else []*Node
	// Cases are switch's case blocks.
	Cases [][]*Node
	// Callee is call's target method name.
	Callee string
	// Place is async's target place; non-zero marks a place-switching
	// async.
	Place int
	// Clocked marks an async whose activity is registered on the
	// implicit clock (Section 8 clocks extension).
	Clocked bool
}

// MethodDecl is one condensed method. Every block, including the
// method body, is implicitly terminated by an End node, which Counts
// tallies without the node being materialized.
type MethodDecl struct {
	Name string
	Body []*Node
}

// Unit is a condensed program.
type Unit struct {
	Methods []*MethodDecl
}

// Counts is a Figure 7 row: the number of nodes of each kind.
type Counts struct {
	Total  int
	ByKind [int(numKinds)]int
}

// Add tallies one node of kind k.
func (c *Counts) Add(k Kind) {
	c.Total++
	c.ByKind[k]++
}

// Of returns the count for one kind.
func (c Counts) Of(k Kind) int { return c.ByKind[k] }

// NodeCounts computes the Figure 7 row for the unit. Every method
// contributes one Method node; every block (method body, async,
// finish, loop, each if branch, each switch case) contributes one
// implicit End node.
func (u *Unit) NodeCounts() Counts {
	var c Counts
	for _, m := range u.Methods {
		c.Add(Method)
		countBlock(&c, m.Body)
	}
	return c
}

func countBlock(c *Counts, block []*Node) {
	for _, n := range block {
		c.Add(n.Kind)
		switch n.Kind {
		case Async, Finish, Loop:
			countBlock(c, n.Body)
		case If:
			countBlock(c, n.Body)
			if n.Else != nil {
				countBlock(c, n.Else)
			}
		case Switch:
			for _, cs := range n.Cases {
				countBlock(c, cs)
			}
		}
	}
	c.Add(End) // the block's implicit terminator
}

// AsyncStats classifies the unit's asyncs as in Figure 6: loop
// asyncs occur (transitively) inside a loop with no finish between
// the loop and the async — they may happen in parallel with their own
// other iterations; place-switching asyncs carry a place annotation.
// An async that is both (an ateach body) counts as a loop async, as
// the paper specifies; an async that is neither is counted in Plain.
type AsyncStats struct {
	Total       int
	Loop        int
	PlaceSwitch int
	Plain       int
}

// AsyncStats computes the classification.
func (u *Unit) AsyncStats() AsyncStats {
	var s AsyncStats
	for _, m := range u.Methods {
		classifyBlock(&s, m.Body, false)
	}
	return s
}

// classifyBlock walks a block; inLoop is whether a loop encloses the
// block with no intervening finish.
func classifyBlock(s *AsyncStats, block []*Node, inLoop bool) {
	for _, n := range block {
		switch n.Kind {
		case Async:
			s.Total++
			switch {
			case inLoop:
				s.Loop++
			case n.Place != 0:
				s.PlaceSwitch++
			default:
				s.Plain++
			}
			// The async body starts a new activity; a loop around the
			// async still multiplies whatever is inside, so inLoop
			// propagates into the body.
			classifyBlock(s, n.Body, inLoop)
		case Finish:
			classifyBlock(s, n.Body, false)
		case Loop:
			classifyBlock(s, n.Body, true)
		case If:
			classifyBlock(s, n.Body, inLoop)
			if n.Else != nil {
				classifyBlock(s, n.Else, inLoop)
			}
		case Switch:
			for _, cs := range n.Cases {
				classifyBlock(s, cs, inLoop)
			}
		}
	}
}

// LowerArrayLen is the array length of lowered programs; loops use
// guard cell 0 and the remaining cells are free for workloads.
const LowerArrayLen = 4

// LoweringError wraps a condensed→core lowering failure (a malformed
// unit: duplicate methods, no main, …). It is the analysis-stage
// error class of the CLI exit-code convention (exit 3), distinct from
// front-end parse failures (exit 2).
type LoweringError struct {
	Err error
}

func (e *LoweringError) Error() string { return fmt.Sprintf("lowering: %v", e.Err) }
func (e *LoweringError) Unwrap() error { return e.Err }

// Lower translates the unit to a core FX10 program (see the package
// comment for the node-by-node mapping). Method and label names are
// preserved where present. Failures are *LoweringError.
func Lower(u *Unit) (*syntax.Program, error) {
	b := syntax.NewBuilder(LowerArrayLen)
	for _, m := range u.Methods {
		instrs := lowerBlock(b, m.Body)
		if len(instrs) == 0 {
			instrs = []syntax.Instr{b.Skip("")}
		}
		if err := b.AddMethod(m.Name, b.Stmts(instrs...)); err != nil {
			return nil, &LoweringError{Err: err}
		}
	}
	p, err := b.Program()
	if err != nil {
		return nil, &LoweringError{Err: err}
	}
	return p, nil
}

// MustLower is Lower that panics on error, for workload definitions.
func MustLower(u *Unit) *syntax.Program {
	p, err := Lower(u)
	if err != nil {
		panic(err)
	}
	return p
}

func lowerBlock(b *syntax.Builder, block []*Node) []syntax.Instr {
	var out []syntax.Instr
	for _, n := range block {
		switch n.Kind {
		case End:
			// Placeholder: no instruction.
		case Skip, Return:
			out = append(out, b.Skip(n.Label))
		case Advance:
			out = append(out, b.Next(n.Label))
		case Call:
			out = append(out, b.Call(n.Label, n.Callee))
		case Async:
			body := nonEmpty(b, lowerBlock(b, n.Body))
			switch {
			case n.Clocked:
				instr := b.ClockedAsync(n.Label, b.Stmts(body...))
				if n.Place != 0 {
					instr.(*syntax.Async).Place = n.Place
				}
				out = append(out, instr)
			case n.Place != 0:
				out = append(out, b.AsyncAt(n.Label, n.Place, b.Stmts(body...)))
			default:
				out = append(out, b.Async(n.Label, b.Stmts(body...)))
			}
		case Finish:
			body := nonEmpty(b, lowerBlock(b, n.Body))
			out = append(out, b.Finish(n.Label, b.Stmts(body...)))
		case Loop:
			body := nonEmpty(b, lowerBlock(b, n.Body))
			out = append(out, b.While(n.Label, 0, b.Stmts(body...)))
		case If:
			out = append(out, b.Skip(n.Label))
			out = append(out, lowerBlock(b, n.Body)...)
			out = append(out, lowerBlock(b, n.Else)...)
		case Switch:
			out = append(out, b.Skip(n.Label))
			for _, cs := range n.Cases {
				out = append(out, lowerBlock(b, cs)...)
			}
		default:
			panic(fmt.Sprintf("condensed: unknown node kind %v", n.Kind))
		}
	}
	return out
}

func nonEmpty(b *syntax.Builder, instrs []syntax.Instr) []syntax.Instr {
	if len(instrs) == 0 {
		return []syntax.Instr{b.Skip("")}
	}
	return instrs
}
