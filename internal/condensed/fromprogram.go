package condensed

import (
	"fmt"

	"fx10/internal/syntax"
)

// FromProgram converts a core FX10 program to condensed form — the
// inverse direction of Lower, up to the lossy parts of lowering:
// assignments come back as skip (the condensed form is
// value-insensitive) and loop guards are dropped. It exists for the
// cross-front-end oracle: a generated syntax.Program converted here
// can be rendered as X10 (x10.Render) and as Go (gofront.Render) and
// pushed through both front ends, which must agree bit-for-bit.
//
// FromProgram(p) then Lower gives a program with the same shape and
// label structure as p (labels are re-assigned in the same traversal
// order), so MHP reports over the round-tripped program match reports
// over an identically-shaped original.
func FromProgram(p *syntax.Program) (*Unit, error) {
	u := &Unit{}
	for _, m := range p.Methods {
		body, err := fromStmt(m.Body)
		if err != nil {
			return nil, fmt.Errorf("condensed: method %s: %w", m.Name, err)
		}
		u.Methods = append(u.Methods, &MethodDecl{Name: m.Name, Body: body})
	}
	return u, nil
}

func fromStmt(s *syntax.Stmt) ([]*Node, error) {
	var out []*Node
	for cur := s; cur != nil; cur = cur.Next {
		switch i := cur.Instr.(type) {
		case *syntax.Skip:
			out = append(out, &Node{Kind: Skip})
		case *syntax.Assign:
			out = append(out, &Node{Kind: Skip})
		case *syntax.Next:
			out = append(out, &Node{Kind: Advance})
		case *syntax.Call:
			out = append(out, &Node{Kind: Call, Callee: i.Name})
		case *syntax.While:
			body, err := fromStmt(i.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, &Node{Kind: Loop, Body: body})
		case *syntax.Async:
			body, err := fromStmt(i.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, &Node{Kind: Async, Body: body, Place: i.Place, Clocked: i.Clocked})
		case *syntax.Finish:
			body, err := fromStmt(i.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, &Node{Kind: Finish, Body: body})
		default:
			return nil, fmt.Errorf("unknown instruction kind %T", cur.Instr)
		}
	}
	return out, nil
}
