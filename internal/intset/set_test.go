package intset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatalf("New(100) not empty: %v", s)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Universe() != 100 {
		t.Fatalf("Universe = %d, want 100", s.Universe())
	}
}

func TestNewZeroUniverse(t *testing.T) {
	s := New(0)
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("zero-universe set should be empty")
	}
	if s.Has(0) {
		t.Fatalf("Has(0) on empty universe should be false")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddHasRemove(t *testing.T) {
	s := New(130) // spans three words
	for _, e := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(e) {
			t.Fatalf("Has(%d) before Add", e)
		}
		if !s.Add(e) {
			t.Fatalf("Add(%d) reported no change", e)
		}
		if s.Add(e) {
			t.Fatalf("second Add(%d) reported change", e)
		}
		if !s.Has(e) {
			t.Fatalf("Has(%d) after Add", e)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	if !s.Remove(64) {
		t.Fatalf("Remove(64) reported no change")
	}
	if s.Remove(64) {
		t.Fatalf("second Remove(64) reported change")
	}
	if s.Has(64) {
		t.Fatalf("Has(64) after Remove")
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d after Remove, want 7", s.Len())
	}
}

func TestHasOutOfRange(t *testing.T) {
	s := Of(10, 3)
	if s.Has(-1) || s.Has(10) || s.Has(100) {
		t.Fatalf("Has out of range should be false")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Add out of range did not panic")
		}
	}()
	New(10).Add(10)
}

func TestUnionWith(t *testing.T) {
	a := Of(200, 1, 5, 100)
	b := Of(200, 5, 150, 199)
	if !a.UnionWith(b) {
		t.Fatalf("UnionWith reported no change")
	}
	want := []int{1, 5, 100, 150, 199}
	got := a.Sorted()
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
	if a.UnionWith(b) {
		t.Fatalf("idempotent UnionWith reported change")
	}
}

func TestIntersectAndDifference(t *testing.T) {
	a := Of(64, 1, 2, 3, 40)
	b := Of(64, 2, 3, 50)
	c := a.Clone()
	c.IntersectWith(b)
	if got := c.String(); got != "{2, 3}" {
		t.Fatalf("intersect = %s, want {2, 3}", got)
	}
	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.String(); got != "{1, 40}" {
		t.Fatalf("difference = %s, want {1, 40}", got)
	}
}

func TestSubsetEqual(t *testing.T) {
	a := Of(64, 1, 2)
	b := Of(64, 1, 2, 3)
	if !a.SubsetOf(b) {
		t.Fatalf("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatalf("b ⊆ a unexpected")
	}
	if a.Equal(b) {
		t.Fatalf("a == b unexpected")
	}
	if !a.Equal(a.Clone()) {
		t.Fatalf("a == clone(a) expected")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(64, 1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Fatalf("mutating clone changed original")
	}
}

func TestClear(t *testing.T) {
	a := Of(64, 1, 2, 3)
	a.Clear()
	if !a.Empty() {
		t.Fatalf("Clear left elements: %v", a)
	}
}

func TestEachOrder(t *testing.T) {
	a := Of(200, 150, 3, 64, 63)
	var got []int
	a.Each(func(e int) { got = append(got, e) })
	want := []int{3, 63, 64, 150}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", got, want)
		}
	}
}

func TestStringEmpty(t *testing.T) {
	if got := New(5).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestMismatchedUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched UnionWith did not panic")
		}
	}()
	New(10).UnionWith(New(20))
}

// Property: union is commutative, associative, idempotent, and has the
// empty set as identity.
func TestQuickSetAlgebra(t *testing.T) {
	const n = 96
	mk := func(elems []uint8) *Set {
		s := New(n)
		for _, e := range elems {
			s.Add(int(e) % n)
		}
		return s
	}
	commutative := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("union not commutative: %v", err)
	}
	associative := func(xs, ys, zs []uint8) bool {
		a, b, c := mk(xs), mk(ys), mk(zs)
		l := a.Clone()
		l.UnionWith(b)
		l.UnionWith(c)
		bc := b.Clone()
		bc.UnionWith(c)
		r := a.Clone()
		r.UnionWith(bc)
		return l.Equal(r)
	}
	if err := quick.Check(associative, nil); err != nil {
		t.Errorf("union not associative: %v", err)
	}
	idempotent := func(xs []uint8) bool {
		a := mk(xs)
		b := a.Clone()
		b.UnionWith(a)
		return b.Equal(a)
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("union not idempotent: %v", err)
	}
	identity := func(xs []uint8) bool {
		a := mk(xs)
		b := a.Clone()
		changed := b.UnionWith(New(n))
		return !changed && b.Equal(a)
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("empty not identity: %v", err)
	}
}

// Property: Len agrees with a reference count and Elems round-trips.
func TestQuickLenElems(t *testing.T) {
	f := func(xs []uint16) bool {
		const n = 300
		s := New(n)
		ref := map[int]bool{}
		for _, x := range xs {
			e := int(x) % n
			s.Add(e)
			ref[e] = true
		}
		if s.Len() != len(ref) {
			return false
		}
		for _, e := range s.Elems() {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 257
	s := New(n)
	ref := map[int]bool{}
	for i := 0; i < 5000; i++ {
		e := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(e)
			ref[e] = true
		case 1:
			s.Remove(e)
			delete(ref, e)
		case 2:
			if s.Has(e) != ref[e] {
				t.Fatalf("step %d: Has(%d) = %v, ref %v", i, e, s.Has(e), ref[e])
			}
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("final Len = %d, ref %d", s.Len(), len(ref))
	}
}
