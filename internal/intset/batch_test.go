package intset

import (
	"math/rand"
	"testing"
)

// TestNewPairsBatchIndependence checks slab-backed pair sets never
// observably share storage: writes to one member must not appear in
// any sibling.
func TestNewPairsBatchIndependence(t *testing.T) {
	const n, k = 70, 9
	batch := NewPairsBatch(n, k)
	if len(batch) != k {
		t.Fatalf("NewPairsBatch returned %d sets, want %d", len(batch), k)
	}
	for i, p := range batch {
		p.Add(i, n-1-i)
	}
	for i, p := range batch {
		if p.Len() != 1 || !p.Has(i, n-1-i) {
			t.Fatalf("set %d corrupted: %v", i, p)
		}
		for j, q := range batch {
			if j != i && q.Has(i, n-1-i) {
				t.Fatalf("write to set %d bled into set %d", i, j)
			}
		}
	}
	if NewPairsBatch(n, 0) != nil {
		t.Fatal("NewPairsBatch(n, 0) should be nil")
	}
}

// TestPairSetCopyFromModel drives random mixed operations over a
// batch of pair sets against a pure-map reference model: CopyFrom
// (the Clone-into-arena fast path), Add, AddSym, CrossSym, UnionWith
// and Clear must all leave every set equal to its model.
func TestPairSetCopyFromModel(t *testing.T) {
	const n, k, ops = 67, 5, 2000
	rng := rand.New(rand.NewSource(42))
	batch := NewPairsBatch(n, k)
	model := make([]map[[2]int]bool, k)
	for i := range model {
		model[i] = map[[2]int]bool{}
	}

	for op := 0; op < ops; op++ {
		i := rng.Intn(k)
		switch rng.Intn(6) {
		case 0:
			a, b := rng.Intn(n), rng.Intn(n)
			batch[i].Add(a, b)
			model[i][[2]int{a, b}] = true
		case 1:
			a, b := rng.Intn(n), rng.Intn(n)
			batch[i].AddSym(a, b)
			model[i][[2]int{a, b}] = true
			model[i][[2]int{b, a}] = true
		case 2:
			a, b := New(n), New(n)
			for x := 0; x < rng.Intn(8); x++ {
				a.Add(rng.Intn(n))
			}
			for x := 0; x < rng.Intn(8); x++ {
				b.Add(rng.Intn(n))
			}
			batch[i].CrossSym(a, b)
			for _, x := range a.Elems() {
				for _, y := range b.Elems() {
					model[i][[2]int{x, y}] = true
					model[i][[2]int{y, x}] = true
				}
			}
		case 3:
			j := rng.Intn(k)
			batch[i].UnionWith(batch[j])
			for pr := range model[j] {
				model[i][pr] = true
			}
		case 4:
			j := rng.Intn(k)
			batch[i].CopyFrom(batch[j])
			src := model[j]
			model[i] = make(map[[2]int]bool, len(src))
			for pr := range src {
				model[i][pr] = true
			}
		case 5:
			batch[i].Clear()
			model[i] = map[[2]int]bool{}
		}

		if batch[i].Len() != len(model[i]) {
			t.Fatalf("op %d: set %d Len = %d, model has %d", op, i, batch[i].Len(), len(model[i]))
		}
	}

	for i, p := range batch {
		for _, pr := range p.Pairs() {
			if !model[i][pr] {
				t.Fatalf("set %d has extra pair %v", i, pr)
			}
		}
		for pr := range model[i] {
			if !p.Has(pr[0], pr[1]) {
				t.Fatalf("set %d missing pair %v", i, pr)
			}
		}
	}
}

// TestPairSetCopyFromInvalidatesMemo pins the subtle part of
// CopyFrom: overwriting can shrink the set, so the CrossSym memo must
// not suppress a re-fold of operands it saw before the copy.
func TestPairSetCopyFromInvalidatesMemo(t *testing.T) {
	const n = 16
	a, b := Of(n, 1), Of(n, 2)
	p, empty := NewPairs(n), NewPairs(n)
	p.CrossSym(a, b)
	p.CopyFrom(empty)
	if !p.CrossSym(a, b) {
		t.Fatal("CrossSym after CopyFrom reported no change")
	}
	if !p.Has(1, 2) || !p.Has(2, 1) {
		t.Fatalf("memo suppressed re-fold after CopyFrom: %v", p)
	}
}
