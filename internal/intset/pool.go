package intset

import "sync"

// PairSetPool recycles PairSets keyed by universe size. Densifying a
// pair set over n labels allocates n·⌈n/64⌉ words; code that does this
// repeatedly over the same universe — the direct type-inference
// fixpoint discarding one environment per pass, corpus sweeps
// re-analyzing same-shaped programs — churns the allocator for
// identically-sized buffers. Get returns an empty pair set over the
// requested universe, reusing a recycled one when available; Put hands
// a pair set back. A pair set must not be used after Put, and must not
// be Put twice. The pool is safe for concurrent use.
type PairSetPool struct {
	mu    sync.Mutex
	pools map[int]*sync.Pool
}

// NewPairSetPool returns an empty pool.
func NewPairSetPool() *PairSetPool {
	return &PairSetPool{pools: make(map[int]*sync.Pool)}
}

// PairPool is the package-level default pool shared by the analysis.
var PairPool = NewPairSetPool()

func (pp *PairSetPool) pool(n int) *sync.Pool {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	sp, ok := pp.pools[n]
	if !ok {
		sp = &sync.Pool{New: func() any { return NewPairs(n) }}
		pp.pools[n] = sp
	}
	return sp
}

// Get returns an empty pair set over {0, …, n-1} × {0, …, n-1}.
func (pp *PairSetPool) Get(n int) *PairSet {
	return pp.pool(n).Get().(*PairSet)
}

// Put recycles p for a later Get of the same universe size. Put clears
// p; the caller must drop every reference to it.
func (pp *PairSetPool) Put(p *PairSet) {
	if p == nil {
		return
	}
	p.Clear()
	pp.pool(p.n).Put(p)
}
