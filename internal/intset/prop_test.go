package intset

import (
	"math/rand"
	"testing"
)

// pairModel is the naive reference implementation the dense PairSet is
// checked against: a map of ordered pairs with the set-theoretic
// definitions of AddSym, UnionWith and CrossSym written out directly.
type pairModel map[[2]int]bool

func (m pairModel) addSym(i, j int) bool {
	changed := !m[[2]int{i, j}] || !m[[2]int{j, i}]
	m[[2]int{i, j}] = true
	m[[2]int{j, i}] = true
	return changed
}

func (m pairModel) unionWith(o pairModel) bool {
	changed := false
	for k := range o {
		if !m[k] {
			m[k] = true
			changed = true
		}
	}
	return changed
}

func (m pairModel) crossSym(a, b []int) bool {
	changed := false
	for _, i := range a {
		for _, j := range b {
			if !m[[2]int{i, j}] {
				m[[2]int{i, j}] = true
				changed = true
			}
			if !m[[2]int{j, i}] {
				m[[2]int{j, i}] = true
				changed = true
			}
		}
	}
	return changed
}

func (m pairModel) equalPairSet(t *testing.T, p *PairSet) {
	t.Helper()
	if p.Len() != len(m) {
		t.Fatalf("Len() = %d, model has %d pairs", p.Len(), len(m))
	}
	for k := range m {
		if !p.Has(k[0], k[1]) {
			t.Fatalf("model pair (%d,%d) missing from PairSet", k[0], k[1])
		}
	}
}

// randomSet returns a random subset of {0,…,n-1} with the given
// density, as both a Set and its element slice. density 0 exercises
// the empty-operand fast paths.
func randomSet(rng *rand.Rand, n int, density float64) (*Set, []int) {
	s := New(n)
	var elems []int
	for e := 0; e < n; e++ {
		if rng.Float64() < density {
			s.Add(e)
			elems = append(elems, e)
		}
	}
	return s, elems
}

// TestPairSetPropertyModel drives PairSet.CrossSym, UnionWith and
// AddSym against the map model on seeded random set pairs across
// several universe sizes, including the empty-operand and self-cross
// edge cases the word-level fast paths special-case. Every operation's
// change report must agree with the model's, and the full contents
// must agree after every step.
func TestPairSetPropertyModel(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	universes := []int{1, 3, 17, 64, 65, 130}
	const rounds = 200

	for _, n := range universes {
		p := NewPairs(n)
		model := pairModel{}
		for round := 0; round < rounds; round++ {
			// Density 0 forces empty operands regularly.
			density := []float64{0, 0.05, 0.3, 0.9}[rng.Intn(4)]
			a, aElems := randomSet(rng, n, density)
			b, bElems := randomSet(rng, n, []float64{0, 0.1, 0.5}[rng.Intn(3)])

			switch rng.Intn(5) {
			case 0: // symmetric cross of two fresh sets
				got := p.CrossSym(a, b)
				want := model.crossSym(aElems, bElems)
				if got != want {
					t.Fatalf("n=%d round=%d: CrossSym changed=%v, model=%v", n, round, got, want)
				}
			case 1: // self-cross: A × A
				got := p.CrossSym(a, a)
				want := model.crossSym(aElems, aElems)
				if got != want {
					t.Fatalf("n=%d round=%d: self CrossSym changed=%v, model=%v", n, round, got, want)
				}
				// Repeating the identical call must hit the memo fast
				// path and report no change.
				if p.CrossSym(a, a) {
					t.Fatalf("n=%d round=%d: repeated self CrossSym reported change", n, round)
				}
			case 2: // AddSym of a random pair
				i, j := rng.Intn(n), rng.Intn(n)
				got := p.AddSym(i, j)
				want := model.addSym(i, j)
				if got != want {
					t.Fatalf("n=%d round=%d: AddSym(%d,%d) changed=%v, model=%v", n, round, i, j, got, want)
				}
			case 3: // UnionWith an independently-built pair set
				q := NewPairs(n)
				qModel := pairModel{}
				q.CrossSym(a, b)
				qModel.crossSym(aElems, bElems)
				got := p.UnionWith(q)
				want := model.unionWith(qModel)
				if got != want {
					t.Fatalf("n=%d round=%d: UnionWith changed=%v, model=%v", n, round, got, want)
				}
			case 4: // cross, mutate an operand, cross again: the memo
				// must observe the generation bump and redo the work.
				p.CrossSym(a, b)
				model.crossSym(aElems, bElems)
				e := rng.Intn(n)
				if a.Add(e) {
					aElems = append(aElems, e)
				}
				got := p.CrossSym(a, b)
				want := model.crossSym(aElems, bElems)
				if got != want {
					t.Fatalf("n=%d round=%d: post-mutation CrossSym changed=%v, model=%v", n, round, got, want)
				}
			}
			model.equalPairSet(t, p)
		}
	}
}

// TestPairSetCrossSymMemoInvalidation pins the memo's correctness
// conditions one by one: a repeat call is elided, a generation bump
// re-enables it, operand order is symmetric, and Clear invalidates.
func TestPairSetCrossSymMemoInvalidation(t *testing.T) {
	const n = 70
	a := Of(n, 1, 5, 64)
	b := Of(n, 2, 69)
	p := NewPairs(n)

	if !p.CrossSym(a, b) {
		t.Fatal("first CrossSym reported no change")
	}
	if p.CrossSym(a, b) {
		t.Fatal("identical repeat CrossSym reported change")
	}
	if p.CrossSym(b, a) {
		t.Fatal("swapped-operand repeat CrossSym reported change")
	}
	a.Add(7)
	if !p.CrossSym(a, b) {
		t.Fatal("CrossSym after operand mutation reported no change")
	}
	if !p.Has(7, 2) || !p.Has(2, 7) {
		t.Fatal("pairs from mutated operand missing")
	}
	p.Clear()
	if p.Len() != 0 {
		t.Fatalf("Len after Clear = %d", p.Len())
	}
	if !p.CrossSym(a, b) {
		t.Fatal("CrossSym after Clear hit a stale memo")
	}
}

// TestSetCountInvariants checks the incrementally-maintained
// population count against recomputation across every mutating op.
func TestSetCountInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recount := func(s *Set) int {
		c := 0
		s.Each(func(int) { c++ })
		return c
	}
	for _, n := range []int{1, 64, 100} {
		s := New(n)
		o, _ := randomSet(rng, n, 0.4)
		for i := 0; i < 300; i++ {
			switch rng.Intn(6) {
			case 0:
				s.Add(rng.Intn(n))
			case 1:
				s.Remove(rng.Intn(n))
			case 2:
				s.UnionWith(o)
			case 3:
				s.IntersectWith(o)
			case 4:
				s.DifferenceWith(o)
			case 5:
				s.Clear()
			}
			if s.Len() != recount(s) {
				t.Fatalf("n=%d: cached Len %d != recount %d", n, s.Len(), recount(s))
			}
			if s.Empty() != (recount(s) == 0) {
				t.Fatalf("n=%d: Empty() inconsistent", n)
			}
		}
	}
}

// TestNewBatch checks slab-backed sets behave like independent sets.
func TestNewBatch(t *testing.T) {
	sets := NewBatch(100, 5)
	if len(sets) != 5 {
		t.Fatalf("len = %d", len(sets))
	}
	sets[0].Add(3)
	sets[1].Add(99)
	for i, s := range sets {
		if s.Universe() != 100 {
			t.Fatalf("set %d universe %d", i, s.Universe())
		}
	}
	if sets[0].Has(99) || sets[1].Has(3) || !sets[0].Has(3) || !sets[1].Has(99) {
		t.Fatal("batch sets share bits")
	}
	if sets[2].Len() != 0 {
		t.Fatal("untouched batch set non-empty")
	}
	if NewBatch(4, 0) != nil {
		t.Fatal("NewBatch(n, 0) != nil")
	}
}

// TestPairSetPool checks Get/Put recycling returns empty sets of the
// right universe.
func TestPairSetPool(t *testing.T) {
	pool := NewPairSetPool()
	p := pool.Get(32)
	if p.Universe() != 32 || p.Len() != 0 {
		t.Fatalf("Get(32): universe %d len %d", p.Universe(), p.Len())
	}
	p.AddSym(1, 2)
	pool.Put(p)
	q := pool.Get(32)
	if q.Len() != 0 {
		t.Fatalf("recycled pair set not cleared: %v", q)
	}
	if r := pool.Get(8); r.Universe() != 8 {
		t.Fatalf("Get(8) universe %d", r.Universe())
	}
	pool.Put(nil) // must not panic
}
