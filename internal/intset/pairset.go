package intset

import (
	"fmt"
	"math/bits"
	"strings"
)

// PairSet is a dense bit-matrix set over pairs drawn from the universe
// {0, …, n-1} × {0, …, n-1}. It represents the may-happen-in-parallel
// sets M of the analysis: membership of (l1, l2) means the instructions
// labeled l1 and l2 may happen in parallel.
//
// The analysis only ever constructs symmetric pair sets (symcross
// always adds both orientations), but PairSet itself does not enforce
// symmetry; AddSym and CrossSym are the symmetric insertion operations.
type PairSet struct {
	n     int      // universe size per coordinate
	w     int      // words per row
	words []uint64 // n rows of w words, row-major
	count int      // cached population count (ordered pairs)

	// CrossSym memo: the operands of the last CrossSym call and their
	// generations. Pair sets only grow (Clear is the one removal and
	// invalidates the memo), so once symcross(A, B) has been folded in,
	// repeating it with unchanged operands provably adds nothing and is
	// skipped without touching the bit matrix.
	memoOK       bool
	lastA, lastB *Set
	genA, genB   uint32
}

// NewPairs returns an empty pair set over {0,…,n-1} × {0,…,n-1}.
func NewPairs(n int) *PairSet {
	if n < 0 {
		panic(fmt.Sprintf("intset: negative universe size %d", n))
	}
	w := wordsFor(n)
	return &PairSet{n: n, w: w, words: make([]uint64, n*w)}
}

// NewPairsBatch returns k independent empty pair sets over
// {0,…,n-1} × {0,…,n-1} backed by a single slab allocation — the
// pair-set analog of NewBatch. A caller that materializes many pair
// sets at once (cloning a type environment, a solver worker filling
// its arena) allocates 3 objects instead of 2k; the sets are
// otherwise ordinary and never observably shared.
func NewPairsBatch(n, k int) []*PairSet {
	if n < 0 {
		panic(fmt.Sprintf("intset: negative universe size %d", n))
	}
	if k <= 0 {
		return nil
	}
	w := wordsFor(n)
	slab := make([]uint64, k*n*w)
	sets := make([]PairSet, k)
	out := make([]*PairSet, k)
	for i := range sets {
		sets[i] = PairSet{n: n, w: w, words: slab[i*n*w : (i+1)*n*w : (i+1)*n*w]}
		out[i] = &sets[i]
	}
	return out
}

// Universe returns the per-coordinate universe size.
func (p *PairSet) Universe() int { return p.n }

func (p *PairSet) checkPair(i, j int) {
	if i < 0 || i >= p.n || j < 0 || j >= p.n {
		panic(fmt.Sprintf("intset: pair (%d,%d) outside universe [0,%d)^2", i, j, p.n))
	}
}

// row returns the word slice for row i.
func (p *PairSet) row(i int) []uint64 {
	return p.words[i*p.w : (i+1)*p.w]
}

// Add inserts the ordered pair (i, j) and reports whether the set changed.
func (p *PairSet) Add(i, j int) bool {
	p.checkPair(i, j)
	r := p.row(i)
	w, b := j/wordBits, uint(j%wordBits)
	old := r[w]
	nw := old | (1 << b)
	if nw == old {
		return false
	}
	r[w] = nw
	p.count++
	return true
}

// AddSym inserts both (i, j) and (j, i); it reports whether the set changed.
func (p *PairSet) AddSym(i, j int) bool {
	a := p.Add(i, j)
	b := p.Add(j, i)
	return a || b
}

// Has reports whether the ordered pair (i, j) is in the set.
func (p *PairSet) Has(i, j int) bool {
	if i < 0 || i >= p.n || j < 0 || j >= p.n {
		return false
	}
	return p.row(i)[j/wordBits]&(1<<uint(j%wordBits)) != 0
}

// CrossSym adds symcross(A, B) = (A × B) ∪ (B × A) to the set and
// reports whether the set changed. A and B must share the pair set's
// universe. This is the workhorse of the analysis: each Lcross, Scross
// and Tcross in the paper is a CrossSym with particular arguments.
//
// Two fast paths skip the O(|A|·n/64 + |B|·n/64) word sweep entirely:
// an empty operand makes both products empty, and operands that are
// pointer- and generation-identical to the previous CrossSym call on
// this pair set have already been folded in (pair sets only grow, so
// the earlier fold still covers the product).
func (p *PairSet) CrossSym(a, b *Set) bool {
	if a.n != p.n || b.n != p.n {
		panic(fmt.Sprintf("intset: CrossSym universe mismatch (%d, %d, %d)", a.n, b.n, p.n))
	}
	if a.count == 0 || b.count == 0 {
		return false
	}
	if p.memoOK &&
		((p.lastA == a && p.genA == a.gen && p.lastB == b && p.genB == b.gen) ||
			(p.lastA == b && p.genA == b.gen && p.lastB == a && p.genB == a.gen)) {
		return false
	}
	changed := false
	a.Each(func(i int) {
		r := p.row(i)
		for k, w := range b.words {
			old := r[k]
			nw := old | w
			if nw != old {
				r[k] = nw
				p.count += bits.OnesCount64(nw &^ old)
				changed = true
			}
		}
	})
	b.Each(func(i int) {
		r := p.row(i)
		for k, w := range a.words {
			old := r[k]
			nw := old | w
			if nw != old {
				r[k] = nw
				p.count += bits.OnesCount64(nw &^ old)
				changed = true
			}
		}
	})
	p.memoOK, p.lastA, p.genA, p.lastB, p.genB = true, a, a.gen, b, b.gen
	return changed
}

// UnionWith adds every pair of q to p and reports whether p changed.
// An empty q and an already-saturated p short-circuit on the cached
// population counts.
func (p *PairSet) UnionWith(q *PairSet) bool {
	if p.n != q.n {
		panic(fmt.Sprintf("intset: mismatched pair universes %d and %d", p.n, q.n))
	}
	if q.count == 0 || p.count == p.n*p.n {
		return false
	}
	changed := false
	for i, w := range q.words {
		old := p.words[i]
		nw := old | w
		if nw != old {
			p.words[i] = nw
			p.count += bits.OnesCount64(nw &^ old)
			changed = true
		}
	}
	return changed
}

// Clone returns an independent copy of p.
func (p *PairSet) Clone() *PairSet {
	c := &PairSet{n: p.n, w: p.w, words: make([]uint64, len(p.words)), count: p.count}
	copy(c.words, p.words)
	return c
}

// CopyFrom overwrites p with the contents of q — the Clone-into-arena
// fast path: a single word copy into already-allocated (typically
// NewPairsBatch slab) storage. The pair sets must share a universe
// size. The CrossSym memo is invalidated: overwriting may shrink the
// set, so earlier folds no longer prove anything.
func (p *PairSet) CopyFrom(q *PairSet) {
	if p.n != q.n {
		panic(fmt.Sprintf("intset: mismatched pair universes %d and %d", p.n, q.n))
	}
	copy(p.words, q.words)
	p.count = q.count
	p.memoOK, p.lastA, p.lastB = false, nil, nil
}

// Clear removes all pairs and invalidates the CrossSym memo.
func (p *PairSet) Clear() {
	p.memoOK, p.lastA, p.lastB = false, nil, nil
	if p.count == 0 {
		return
	}
	for i := range p.words {
		p.words[i] = 0
	}
	p.count = 0
}

// Len returns the number of ordered pairs in the set (O(1): the
// population count is maintained incrementally).
func (p *PairSet) Len() int { return p.count }

// Empty reports whether the set has no pairs.
func (p *PairSet) Empty() bool { return p.count == 0 }

// Equal reports whether p and q contain the same pairs.
func (p *PairSet) Equal(q *PairSet) bool {
	if p.n != q.n {
		return false
	}
	for i, w := range p.words {
		if w != q.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every pair of p is in q.
func (p *PairSet) SubsetOf(q *PairSet) bool {
	if p.n != q.n {
		panic(fmt.Sprintf("intset: mismatched pair universes %d and %d", p.n, q.n))
	}
	for i, w := range p.words {
		if w&^q.words[i] != 0 {
			return false
		}
	}
	return true
}

// Symmetric reports whether (i,j) ∈ p implies (j,i) ∈ p.
func (p *PairSet) Symmetric() bool {
	ok := true
	p.Each(func(i, j int) {
		if !p.Has(j, i) {
			ok = false
		}
	})
	return ok
}

// Each calls f on every ordered pair in row-major order.
func (p *PairSet) Each(f func(i, j int)) {
	for i := 0; i < p.n; i++ {
		r := p.row(i)
		for wi, w := range r {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				f(i, wi*wordBits+b)
				w &= w - 1
			}
		}
	}
}

// Pairs returns all ordered pairs in row-major order.
func (p *PairSet) Pairs() [][2]int {
	out := make([][2]int, 0, p.Len())
	p.Each(func(i, j int) { out = append(out, [2]int{i, j}) })
	return out
}

// Row returns the set of js with (i, j) in p, as a fresh Set.
func (p *PairSet) Row(i int) *Set {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("intset: row %d outside universe [0,%d)", i, p.n))
	}
	s := New(p.n)
	copy(s.words, p.row(i))
	for _, w := range s.words {
		s.count += bits.OnesCount64(w)
	}
	return s
}

// RowIntersects reports whether row i of p has any element in common
// with the set b.
func (p *PairSet) RowIntersects(i int, b *Set) bool {
	if b.n != p.n {
		panic(fmt.Sprintf("intset: RowIntersects universe mismatch %d and %d", b.n, p.n))
	}
	r := p.row(i)
	for k, w := range b.words {
		if r[k]&w != 0 {
			return true
		}
	}
	return false
}

// String renders the set as "{(i,j), …}".
func (p *PairSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	p.Each(func(i, j int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "(%d,%d)", i, j)
	})
	b.WriteByte('}')
	return b.String()
}

// MemoryFootprint returns the approximate number of bytes used by the
// pair set's backing storage. The solver uses this for the space column
// of Figure 8.
func (p *PairSet) MemoryFootprint() int { return len(p.words) * 8 }
