// Package intset provides dense bit-vector sets over a fixed universe
// {0, …, n-1} of small integers, plus a companion pair-set over the
// universe {0, …, n-1} × {0, …, n-1}.
//
// The may-happen-in-parallel analysis of Featherweight X10 manipulates
// sets of statement labels (R and O sets) and sets of label pairs
// (M sets). Lee and Palsberg's complexity argument (Section 5.2 of the
// paper) assumes bit-vector sets so that a union is O(n) or O(n^2) word
// operations; this package is that representation.
//
// Sets are mutable. The zero value is not useful; construct sets with
// New and pair sets with NewPairs. All sets participating in one
// analysis must share the same universe size.
package intset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const wordBits = 64

// wordsFor returns the number of 64-bit words needed for n bits.
func wordsFor(n int) int {
	return (n + wordBits - 1) / wordBits
}

// Set is a dense bit-vector set over the universe {0, …, n-1}.
//
// Two derived quantities are maintained incrementally: count, the
// population count (making Len and Empty O(1) and enabling the
// empty-operand and already-full fast paths of UnionWith and
// PairSet.CrossSym), and gen, a generation counter bumped on every
// content change. gen is the dirty bit of the cross-product memo:
// PairSet.CrossSym remembers the (pointer, gen) of its last operands,
// and an unchanged generation proves a repeat call cannot add pairs.
type Set struct {
	n     int
	words []uint64
	count int    // cached population count
	gen   uint32 // bumped whenever the contents change
}

// New returns an empty set over the universe {0, …, n-1}.
// It panics if n is negative.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("intset: negative universe size %d", n))
	}
	return &Set{n: n, words: make([]uint64, wordsFor(n))}
}

// NewBatch returns k independent empty sets over {0, …, n-1} backed
// by a single slab allocation (one words array, one Set array). A
// fixpoint solver that knows up front how many variables it solves
// allocates 3 objects instead of 2k; the sets are otherwise ordinary
// and never observably shared.
func NewBatch(n, k int) []*Set {
	if n < 0 {
		panic(fmt.Sprintf("intset: negative universe size %d", n))
	}
	if k <= 0 {
		return nil
	}
	w := wordsFor(n)
	slab := make([]uint64, k*w)
	sets := make([]Set, k)
	out := make([]*Set, k)
	for i := range sets {
		sets[i] = Set{n: n, words: slab[i*w : (i+1)*w : (i+1)*w]}
		out[i] = &sets[i]
	}
	return out
}

// Of returns a set over the universe {0, …, n-1} containing the given
// elements.
func Of(n int, elems ...int) *Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Universe returns the universe size n the set was created with.
func (s *Set) Universe() int { return s.n }

// check panics if e is outside the universe.
func (s *Set) check(e int) {
	if e < 0 || e >= s.n {
		panic(fmt.Sprintf("intset: element %d outside universe [0,%d)", e, s.n))
	}
}

// Add inserts e into the set and reports whether the set changed.
func (s *Set) Add(e int) bool {
	s.check(e)
	w, b := e/wordBits, uint(e%wordBits)
	old := s.words[w]
	nw := old | (1 << b)
	if nw == old {
		return false
	}
	s.words[w] = nw
	s.count++
	s.gen++
	return true
}

// Remove deletes e from the set and reports whether the set changed.
func (s *Set) Remove(e int) bool {
	s.check(e)
	w, b := e/wordBits, uint(e%wordBits)
	old := s.words[w]
	nw := old &^ (1 << b)
	if nw == old {
		return false
	}
	s.words[w] = nw
	s.count--
	s.gen++
	return true
}

// Has reports whether e is in the set.
func (s *Set) Has(e int) bool {
	if e < 0 || e >= s.n {
		return false
	}
	return s.words[e/wordBits]&(1<<uint(e%wordBits)) != 0
}

// UnionWith adds every element of t to s and reports whether s changed.
// The sets must share a universe size. An empty t and an already-full
// s are detected from the cached population counts without touching
// the words.
func (s *Set) UnionWith(t *Set) bool {
	s.sameUniverse(t)
	if t.count == 0 || s.count == s.n {
		return false
	}
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			s.count += bits.OnesCount64(nw &^ old)
			changed = true
		}
	}
	if changed {
		s.gen++
	}
	return changed
}

// IntersectWith removes from s every element not in t and reports
// whether s changed.
func (s *Set) IntersectWith(t *Set) bool {
	s.sameUniverse(t)
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old & w
		if nw != old {
			s.words[i] = nw
			s.count -= bits.OnesCount64(old &^ nw)
			changed = true
		}
	}
	if changed {
		s.gen++
	}
	return changed
}

// DifferenceWith removes every element of t from s and reports whether
// s changed.
func (s *Set) DifferenceWith(t *Set) bool {
	s.sameUniverse(t)
	if t.count == 0 || s.count == 0 {
		return false
	}
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old &^ w
		if nw != old {
			s.words[i] = nw
			s.count -= bits.OnesCount64(old &^ nw)
			changed = true
		}
	}
	if changed {
		s.gen++
	}
	return changed
}

func (s *Set) sameUniverse(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("intset: mismatched universes %d and %d", s.n, t.n))
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words)), count: s.count}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t. The sets must share a
// universe size.
func (s *Set) CopyFrom(t *Set) {
	s.sameUniverse(t)
	copy(s.words, t.words)
	s.count = t.count
	s.gen++
}

// CopyFromFit overwrites s with the contents of t, which may have a
// different universe size. It reports false — leaving s in an
// unspecified state — when t contains an element outside s's
// universe; word-level copying makes the success path O(words), so a
// solver reusing values across programs of slightly different sizes
// need not decode elements one by one.
func (s *Set) CopyFromFit(t *Set) bool {
	if s.n == t.n {
		s.CopyFrom(t)
		return true
	}
	k := len(s.words)
	if len(t.words) < k {
		k = len(t.words)
	}
	copy(s.words[:k], t.words[:k])
	for i := k; i < len(s.words); i++ {
		s.words[i] = 0
	}
	for _, w := range t.words[k:] {
		if w != 0 {
			return false
		}
	}
	if r := s.n % wordBits; r != 0 && t.n > s.n && k > 0 {
		if s.words[k-1]&^(1<<r-1) != 0 {
			return false
		}
	}
	s.count = t.count
	s.gen++
	return true
}

// Clear removes all elements.
func (s *Set) Clear() {
	if s.count == 0 {
		return
	}
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
	s.gen++
}

// Len returns the number of elements in the set (O(1): the population
// count is maintained incrementally).
func (s *Set) Len() int { return s.count }

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool { return s.count == 0 }

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Each calls f on every element in increasing order.
func (s *Set) Each(f func(e int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Elems returns the elements of s in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.Each(func(e int) { out = append(out, e) })
	return out
}

// String renders the set as "{e1, e2, …}" in increasing element order.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Each(func(e int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", e)
	})
	b.WriteByte('}')
	return b.String()
}

// Sorted is a convenience for tests: the elements as a sorted slice.
func (s *Set) Sorted() []int {
	e := s.Elems()
	sort.Ints(e)
	return e
}
