package intset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPairAddHas(t *testing.T) {
	p := NewPairs(70)
	if p.Has(1, 2) {
		t.Fatalf("Has before Add")
	}
	if !p.Add(1, 2) {
		t.Fatalf("Add reported no change")
	}
	if p.Add(1, 2) {
		t.Fatalf("second Add reported change")
	}
	if !p.Has(1, 2) || p.Has(2, 1) {
		t.Fatalf("ordered Add should not add the mirror")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
}

func TestPairAddSym(t *testing.T) {
	p := NewPairs(10)
	p.AddSym(3, 7)
	if !p.Has(3, 7) || !p.Has(7, 3) {
		t.Fatalf("AddSym missing an orientation")
	}
	if !p.Symmetric() {
		t.Fatalf("Symmetric() = false after AddSym")
	}
	p.AddSym(5, 5)
	if !p.Has(5, 5) {
		t.Fatalf("diagonal AddSym missing")
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
}

func TestPairHasOutOfRange(t *testing.T) {
	p := NewPairs(4)
	if p.Has(-1, 0) || p.Has(0, 4) || p.Has(4, 4) {
		t.Fatalf("out-of-range Has should be false")
	}
}

// CrossSym must equal the reference definition
// symcross(A,B) = (A × B) ∪ (B × A)  — equation (37) of the paper.
func TestCrossSymReference(t *testing.T) {
	const n = 67
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a, b := New(n), New(n)
		for i := 0; i < rng.Intn(20); i++ {
			a.Add(rng.Intn(n))
		}
		for i := 0; i < rng.Intn(20); i++ {
			b.Add(rng.Intn(n))
		}
		got := NewPairs(n)
		got.CrossSym(a, b)

		want := NewPairs(n)
		for _, i := range a.Elems() {
			for _, j := range b.Elems() {
				want.Add(i, j)
				want.Add(j, i)
			}
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: CrossSym(%v,%v) = %v, want %v", trial, a, b, got, want)
		}
		if !got.Symmetric() {
			t.Fatalf("trial %d: CrossSym result not symmetric", trial)
		}
	}
}

func TestCrossSymChangeReporting(t *testing.T) {
	const n = 32
	a := Of(n, 1, 2)
	b := Of(n, 3)
	p := NewPairs(n)
	if !p.CrossSym(a, b) {
		t.Fatalf("first CrossSym reported no change")
	}
	if p.CrossSym(a, b) {
		t.Fatalf("repeated CrossSym reported change")
	}
}

func TestCrossSymEmptyOperand(t *testing.T) {
	const n = 16
	p := NewPairs(n)
	if p.CrossSym(Of(n, 1, 2), New(n)) {
		t.Fatalf("CrossSym with empty operand changed the set")
	}
	if !p.Empty() {
		t.Fatalf("CrossSym with empty operand produced pairs: %v", p)
	}
}

func TestPairUnionSubsetEqual(t *testing.T) {
	p := NewPairs(16)
	p.AddSym(1, 2)
	q := NewPairs(16)
	q.AddSym(1, 2)
	q.AddSym(3, 4)
	if !p.SubsetOf(q) {
		t.Fatalf("p ⊆ q expected")
	}
	if q.SubsetOf(p) {
		t.Fatalf("q ⊆ p unexpected")
	}
	if !p.UnionWith(q) {
		t.Fatalf("UnionWith reported no change")
	}
	if !p.Equal(q) {
		t.Fatalf("p != q after union: %v vs %v", p, q)
	}
	if p.UnionWith(q) {
		t.Fatalf("idempotent UnionWith reported change")
	}
}

func TestPairCloneClearEach(t *testing.T) {
	p := NewPairs(8)
	p.Add(1, 2)
	p.Add(0, 7)
	c := p.Clone()
	c.Add(3, 3)
	if p.Has(3, 3) {
		t.Fatalf("mutating clone changed original")
	}
	var got [][2]int
	p.Each(func(i, j int) { got = append(got, [2]int{i, j}) })
	want := [][2]int{{0, 7}, {1, 2}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Each = %v, want %v", got, want)
	}
	p.Clear()
	if !p.Empty() {
		t.Fatalf("Clear left pairs")
	}
}

func TestPairRow(t *testing.T) {
	p := NewPairs(100)
	p.Add(5, 1)
	p.Add(5, 99)
	p.Add(6, 2)
	r := p.Row(5)
	if got := r.String(); got != "{1, 99}" {
		t.Fatalf("Row(5) = %s, want {1, 99}", got)
	}
	r.Add(50) // row copies must be independent
	if p.Has(5, 50) {
		t.Fatalf("mutating Row result changed pair set")
	}
}

func TestRowIntersects(t *testing.T) {
	p := NewPairs(64)
	p.Add(3, 10)
	if !p.RowIntersects(3, Of(64, 10, 11)) {
		t.Fatalf("RowIntersects should be true")
	}
	if p.RowIntersects(3, Of(64, 11)) {
		t.Fatalf("RowIntersects should be false")
	}
	if p.RowIntersects(4, Of(64, 10)) {
		t.Fatalf("empty row should not intersect")
	}
}

func TestPairString(t *testing.T) {
	p := NewPairs(4)
	p.Add(1, 2)
	if got := p.String(); got != "{(1,2)}" {
		t.Fatalf("String = %q", got)
	}
}

func TestQuickPairAlgebra(t *testing.T) {
	const n = 40
	mk := func(ps [][2]uint8) *PairSet {
		p := NewPairs(n)
		for _, pr := range ps {
			p.AddSym(int(pr[0])%n, int(pr[1])%n)
		}
		return p
	}
	commutative := func(xs, ys [][2]uint8) bool {
		a, b := mk(xs), mk(ys)
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("pair union not commutative: %v", err)
	}
	symPreserved := func(xs [][2]uint8) bool {
		return mk(xs).Symmetric()
	}
	if err := quick.Check(symPreserved, nil); err != nil {
		t.Errorf("AddSym does not preserve symmetry: %v", err)
	}
}

func TestPairRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 73
	p := NewPairs(n)
	ref := map[[2]int]bool{}
	for i := 0; i < 5000; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		switch rng.Intn(2) {
		case 0:
			p.Add(a, b)
			ref[[2]int{a, b}] = true
		case 1:
			if p.Has(a, b) != ref[[2]int{a, b}] {
				t.Fatalf("step %d: Has(%d,%d) mismatch", i, a, b)
			}
		}
	}
	if p.Len() != len(ref) {
		t.Fatalf("Len = %d, ref %d", p.Len(), len(ref))
	}
}

func TestMemoryFootprint(t *testing.T) {
	p := NewPairs(128)
	// 128 rows × 2 words × 8 bytes
	if got := p.MemoryFootprint(); got != 128*2*8 {
		t.Fatalf("MemoryFootprint = %d, want %d", got, 128*2*8)
	}
}
