// Package shard implements the place-sharded constraint solver behind
// the engine's "shard" strategy: the constraint system is partitioned
// into method shards (grouped by place when the program is
// place-annotated), shards run pass-based local fixpoints
// concurrently, and a deterministic merge step publishes cross-shard
// values between rounds until the global fixpoint is reached.
//
// The result is bit-identical to every other strategy: the constraints
// define a monotone function on a finite lattice with a unique least
// fixpoint (Theorems 5–6), every union a shard performs is
// constraint-derived from the bottom valuation, and the solve only
// stops when a whole round changes nothing — at which point the
// published snapshots equal the live values and every constraint is
// satisfied. See DESIGN.md §13 for the full soundness argument.
package shard

import (
	"sort"

	"fx10/internal/constraints"
	"fx10/internal/places"
)

// Plan assigns every method of a program to a shard.
type Plan struct {
	// NumShards is the number of shard indices in use (some may own no
	// methods when the weight distribution is extreme).
	NumShards int
	// ShardOf maps a MethodID to its shard.
	ShardOf []int32
}

// PlanSystem partitions sys's methods into at most k shards (k ≤ 0
// means runtime.GOMAXPROCS is chosen by the caller; here it defaults
// to 1). The plan is deterministic in the program alone: methods are
// ordered by primary place (so activities that the Section 8 place
// analysis pins to the same place land in the same shard and their
// dense cross-shard traffic becomes intra-shard) and then cut into
// contiguous runs balanced by constraint-variable weight.
func PlanSystem(sys *constraints.System, k int) Plan {
	nm := len(sys.P.Methods)
	if k > nm {
		k = nm
	}
	if k < 1 {
		k = 1
	}

	w := make([]int, nm)
	total := 0
	for mi := 0; mi < nm; mi++ {
		w[mi] = len(sys.SetVarsOf(mi)) + len(sys.PairVarsOf(mi)) + 1
		total += w[mi]
	}

	order := make([]int, nm)
	for i := range order {
		order[i] = i
	}
	if pi := places.Compute(sys.P); pi.NumPlaces > 1 {
		prim := make([]int, nm)
		for mi := range prim {
			prim[mi] = primaryPlace(pi, mi)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return prim[order[a]] < prim[order[b]]
		})
	}

	shardOf := make([]int32, nm)
	acc, cut := 0, 0
	for _, mi := range order {
		if cut < k-1 && acc >= total*(cut+1)/k {
			cut++
		}
		shardOf[mi] = int32(cut)
		acc += w[mi]
	}
	return Plan{NumShards: cut + 1, ShardOf: shardOf}
}

// primaryPlace is the smallest place a method may run at; methods the
// place fixpoint never reaches (dead code) sort as place 0.
func primaryPlace(pi *places.Info, mi int) int {
	first := 0
	found := false
	pi.MethodPlaces(mi).Each(func(e int) {
		if !found || e < first {
			first, found = e, true
		}
	})
	return first
}
