package shard

import (
	"context"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/fixtures"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// recursiveSource puts genuine cycles into both constraint levels and,
// with the methods split across shards, genuine cross-shard cycles:
// the merge rounds must iterate, not just propagate once.
const recursiveSource = `
array 4;
void f() {
  async { a[0] = 1; }
  g();
}
void g() {
  a[1] = 2;
  f();
}
void main() {
  finish { f(); }
  a[2] = 3;
}
`

// placedSource pins activities to places 1 and 2, driving the
// place-aware ordering in PlanSystem.
const placedSource = `
array 4;
void left() {
  async at (1) { a[0] = 1; }
}
void right() {
  async at (2) { a[1] = 2; }
}
void main() {
  finish {
    left();
    right();
  }
  a[2] = 3;
}
`

func testPrograms(t *testing.T) []*syntax.Program {
	t.Helper()
	var programs []*syntax.Program
	for _, src := range []string{fixtures.Example21Source, fixtures.Example22Source, recursiveSource, placedSource} {
		programs = append(programs, parser.MustParse(src))
	}
	for seed := int64(500); seed < 530; seed++ {
		programs = append(programs, progen.Generate(seed, progen.Default()))
	}
	// Clocked programs exercise the phase filter inside CrossSym: a
	// sharded solve that bypassed it would differ on these.
	for seed := int64(0); seed < 15; seed++ {
		programs = append(programs, progen.Generate(seed, progen.ClockedFinite()))
	}
	return programs
}

// TestShardEqualsTopo is the tentpole acceptance check at the
// valuation level: for every program, mode, shard count and worker
// count, the sharded solve assigns bit-identical values to every set
// and pair variable as the topo solver (both are least solutions, and
// the least solution is unique — Theorems 5–6).
func TestShardEqualsTopo(t *testing.T) {
	configs := []Config{
		{Shards: 1, Workers: 1},
		{Shards: 3, Workers: 1},
		{Shards: 3, Workers: 3},
		{Shards: 8, Workers: 4},
	}
	for pi, p := range testPrograms(t) {
		for _, mode := range []constraints.Mode{constraints.ContextSensitive, constraints.ContextInsensitive} {
			sys := constraints.Generate(labels.Compute(p), mode)
			topo := sys.Solve(constraints.Options{Topo: true})
			for _, cfg := range configs {
				got := Solve(sys, cfg)
				if !topo.ValuationEqual(got) {
					t.Fatalf("program %d (%v) shards=%d workers=%d: valuation differs from topo\n%s",
						pi, mode, cfg.Shards, cfg.Workers, syntax.Print(p))
				}
				if got.Shard == nil {
					t.Fatalf("program %d: sharded solution missing ShardStats", pi)
				}
				if got.Shard.MergeRoundsL1 < 1 || got.Shard.MergeRoundsL2 < 1 {
					t.Fatalf("program %d: implausible merge rounds %+v", pi, got.Shard)
				}
				if got.Shard.Shards < 1 || got.Shard.Shards > cfg.Shards {
					t.Fatalf("program %d: %d non-empty shards with cap %d", pi, got.Shard.Shards, cfg.Shards)
				}
			}
		}
	}
}

// TestPlanDeterministic pins that planning is a pure function of the
// program: identical inputs give identical plans (fleet replicas rely
// on this — and on solver bit-identity generally — for byte-identical
// reports), and every method lands in a valid shard.
func TestPlanDeterministic(t *testing.T) {
	for _, src := range []string{recursiveSource, placedSource} {
		p := parser.MustParse(src)
		sys := constraints.Generate(labels.Compute(p), constraints.ContextSensitive)
		for _, k := range []int{1, 2, 3, 16} {
			a := PlanSystem(sys, k)
			b := PlanSystem(sys, k)
			if a.NumShards != b.NumShards {
				t.Fatalf("k=%d: shard counts differ: %d vs %d", k, a.NumShards, b.NumShards)
			}
			if len(a.ShardOf) != len(p.Methods) {
				t.Fatalf("k=%d: plan covers %d of %d methods", k, len(a.ShardOf), len(p.Methods))
			}
			for mi := range a.ShardOf {
				if a.ShardOf[mi] != b.ShardOf[mi] {
					t.Fatalf("k=%d: plans differ at method %d", k, mi)
				}
				if a.ShardOf[mi] < 0 || int(a.ShardOf[mi]) >= a.NumShards {
					t.Fatalf("k=%d: method %d in invalid shard %d of %d", k, mi, a.ShardOf[mi], a.NumShards)
				}
			}
		}
	}
}

// TestShardStatsDeterministic pins that the solver's work counters are
// scheduling-independent: within a round shards share no mutable
// state, so evaluation and merge-round counts must not depend on
// worker interleaving. The /metrics golden-stability test builds on
// this.
func TestShardStatsDeterministic(t *testing.T) {
	p := progen.Generate(501, progen.Default())
	sys := constraints.Generate(labels.Compute(p), constraints.ContextSensitive)
	cfg := Config{Shards: 4, Workers: 4}
	base := Solve(sys, cfg)
	for i := 0; i < 5; i++ {
		got := Solve(sys, cfg)
		if got.Evaluations != base.Evaluations {
			t.Fatalf("run %d: evaluations %d != %d", i, got.Evaluations, base.Evaluations)
		}
		if *got.Shard != *base.Shard && (got.Shard.MergeRoundsL1 != base.Shard.MergeRoundsL1 ||
			got.Shard.MergeRoundsL2 != base.Shard.MergeRoundsL2 || got.Shard.Shards != base.Shard.Shards) {
			t.Fatalf("run %d: shard stats %+v != %+v", i, got.Shard, base.Shard)
		}
	}
}

// TestShardCancellation checks the cooperative-cancellation contract:
// a cancelled context aborts the solve with the context's error and no
// partial solution.
func TestShardCancellation(t *testing.T) {
	p := progen.Generate(502, progen.Default())
	sys := constraints.Generate(labels.Compute(p), constraints.ContextSensitive)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := SolveCtx(ctx, sys, Config{Shards: 4, Workers: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol != nil {
		t.Fatalf("got a partial solution alongside the error")
	}
}
