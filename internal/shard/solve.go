package shard

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/intset"
)

// Config tunes the sharded solve. Neither knob affects results, only
// wall clock: bit-identity holds for every shard count and worker
// count (see the package comment).
type Config struct {
	// Shards is the number of method shards; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Shards int
	// Workers bounds how many shards solve concurrently; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// cancelStride matches constraints.CancelStride: how many constraint
// evaluations pass between context polls inside a shard.
const cancelStride = 256

// Solve computes the least solution of sys with the sharded solver.
func Solve(sys *constraints.System, cfg Config) *constraints.Solution {
	sol, err := SolveCtx(context.Background(), sys, cfg)
	if err != nil {
		// Background contexts don't cancel; any error here is a bug.
		panic("shard: Solve: " + err.Error())
	}
	return sol
}

// SolveCtx is Solve with cooperative cancellation: shards poll ctx
// every cancelStride evaluations and the first observed cancellation
// aborts the whole solve.
func SolveCtx(ctx context.Context, sys *constraints.System, cfg Config) (*constraints.Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	k := cfg.Shards
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	sv := newSolver(ctx, sys, PlanSystem(sys, k), cfg.Workers)
	sv.solveL1()
	sv.solveL2()
	if sv.aborted.Load() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}

	var evals, solveNs int64
	for s := 0; s < sv.k; s++ {
		evals += sv.evals[s].n
		solveNs += sv.solveNs[s].n
	}
	stats := &constraints.ShardStats{
		Shards:        sv.nonEmptyShards(),
		MergeRoundsL1: sv.roundsL1,
		MergeRoundsL2: sv.roundsL2,
		ShardSolveNs:  solveNs,
	}
	runtime.ReadMemStats(&ms1)
	return constraints.NewSolution(sys, sv.setVals, sv.pairVals, constraints.SolveMetrics{
		Evaluations: evals,
		IterL1:      sv.roundsL1,
		IterL2:      sv.roundsL2,
		Duration:    time.Since(start),
		AllocBytes:  ms1.TotalAlloc - ms0.TotalAlloc,
		Shard:       stats,
	}), nil
}

// padded keeps per-shard counters on separate cache lines so
// concurrent shards don't false-share.
type padded struct {
	n int64
	_ [7]int64
}

// solver carries one sharded solve. The concurrency discipline is
// strict: during a round, shard s writes only variables it owns and
// reads foreign variables only through the snapshot buffers; the
// snapshots are mutated only by the sequential merge step between
// rounds. Change flags are per-variable and written only by the
// owning shard. That makes rounds race-free by construction (the race
// detector agrees; see TestShardRace).
type solver struct {
	ctx     context.Context
	sys     *constraints.System
	plan    Plan
	k       int
	workers int

	setShard  []int32 // SetVar → shard
	pairShard []int32 // PairVar → shard

	l1Of  [][]int32 // shard → indices into sys.L1s
	subOf [][]int32 // shard → indices into sys.Subsets
	l2Of  [][]int32 // shard → indices into sys.L2s

	setVals  []*intset.Set
	pairVals *constraints.PairBags

	// Cross-shard set snapshot: one slot per set variable read by a
	// non-owning shard. setSnap starts at bottom and is advanced (by
	// union, equivalent to copy under monotone growth) in the merge
	// step whenever the owner flagged a change.
	setSnapIdx []int32       // SetVar → slot, -1 if never read externally
	setSlotVar []int32       // slot → SetVar
	setSnap    []*intset.Set // slot → snapshot value
	setReaders [][]int32     // slot → non-owner shards reading it
	setChanged []bool        // SetVar → changed since last merge (owner-written)

	pairSnapIdx []int32
	pairSlotVar []int32
	pairSnap    *constraints.PairBags
	pairReaders [][]int32
	pairChanged []bool

	roundsL1 int
	roundsL2 int
	evals    []padded // per shard
	solveNs  []padded
	aborted  atomic.Bool
}

func newSolver(ctx context.Context, sys *constraints.System, plan Plan, workers int) *solver {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	k := plan.NumShards
	n := sys.P.NumLabels()
	nv, np := sys.NumSetVars(), sys.NumPairVars()
	sv := &solver{
		ctx:         ctx,
		sys:         sys,
		plan:        plan,
		k:           k,
		workers:     workers,
		setShard:    make([]int32, nv),
		pairShard:   make([]int32, np),
		l1Of:        make([][]int32, k),
		subOf:       make([][]int32, k),
		l2Of:        make([][]int32, k),
		setVals:     intset.NewBatch(n, nv),
		pairVals:    constraints.NewPairBags(np),
		setSnapIdx:  make([]int32, nv),
		setChanged:  make([]bool, nv),
		pairSnapIdx: make([]int32, np),
		pairChanged: make([]bool, np),
		evals:       make([]padded, k),
		solveNs:     make([]padded, k),
	}
	for v := range sv.setShard {
		sv.setShard[v] = plan.ShardOf[sys.SetVarOwner[v]]
		sv.setSnapIdx[v] = -1
	}
	for v := range sv.pairShard {
		sv.pairShard[v] = plan.ShardOf[sys.PairVarOwner[v]]
		sv.pairSnapIdx[v] = -1
	}

	// Constraint ownership follows the LHS (every variable is the LHS
	// of exactly one constraint, so this covers the system); foreign
	// RHS variables get a snapshot slot and a reader edge.
	for ci := range sys.L1s {
		c := &sys.L1s[ci]
		s := sv.setShard[c.LHS]
		sv.l1Of[s] = append(sv.l1Of[s], int32(ci))
		for _, v := range c.Vars {
			sv.noteSetRead(s, v)
		}
	}
	for ci := range sys.Subsets {
		c := &sys.Subsets[ci]
		s := sv.setShard[c.Sup]
		sv.subOf[s] = append(sv.subOf[s], int32(ci))
		sv.noteSetRead(s, c.Sub)
	}
	for ci := range sys.L2s {
		c := &sys.L2s[ci]
		s := sv.pairShard[c.LHS]
		sv.l2Of[s] = append(sv.l2Of[s], int32(ci))
		for _, v := range c.Pairs {
			sv.notePairRead(s, v)
		}
		// Cross terms read set values, but only after level 1 is at
		// its global fixpoint and frozen — no slot needed.
	}
	sv.setSnap = make([]*intset.Set, len(sv.setSlotVar))
	for i := range sv.setSnap {
		sv.setSnap[i] = intset.New(n)
	}
	sv.pairSnap = constraints.NewPairBags(len(sv.pairSlotVar))
	return sv
}

func (sv *solver) noteSetRead(reader int32, v constraints.SetVar) {
	if sv.setShard[v] == reader {
		return
	}
	slot := sv.setSnapIdx[v]
	if slot < 0 {
		slot = int32(len(sv.setSlotVar))
		sv.setSnapIdx[v] = slot
		sv.setSlotVar = append(sv.setSlotVar, int32(v))
		sv.setReaders = append(sv.setReaders, nil)
	}
	sv.setReaders[slot] = appendReader(sv.setReaders[slot], reader)
}

func (sv *solver) notePairRead(reader int32, v constraints.PairVar) {
	if sv.pairShard[v] == reader {
		return
	}
	slot := sv.pairSnapIdx[v]
	if slot < 0 {
		slot = int32(len(sv.pairSlotVar))
		sv.pairSnapIdx[v] = slot
		sv.pairSlotVar = append(sv.pairSlotVar, int32(v))
		sv.pairReaders = append(sv.pairReaders, nil)
	}
	sv.pairReaders[slot] = appendReader(sv.pairReaders[slot], reader)
}

// appendReader adds s to the (short) reader list if absent.
func appendReader(rs []int32, s int32) []int32 {
	for _, x := range rs {
		if x == s {
			return rs
		}
	}
	return append(rs, s)
}

func (sv *solver) nonEmptyShards() int {
	seen := make([]bool, sv.k)
	count := 0
	for _, s := range sv.plan.ShardOf {
		if !seen[s] {
			seen[s] = true
			count++
		}
	}
	return count
}

// tick is the cooperative-cancellation poll: cheap countdown, a real
// context check every cancelStride evaluations. Reports abort.
func (sv *solver) tick(cd *int) bool {
	*cd--
	if *cd > 0 {
		return false
	}
	*cd = cancelStride
	if sv.aborted.Load() {
		return true
	}
	if sv.ctx.Err() != nil {
		sv.aborted.Store(true)
		return true
	}
	return false
}

// runShards applies fn to every shard in queue, concurrently up to the
// worker bound, and records per-shard solve time. fn invocations for
// distinct shards share no mutable state (see the solver comment), so
// scheduling order cannot affect the outcome of a round.
func (sv *solver) runShards(queue []int32, fn func(int32)) {
	timed := func(s int32) {
		t0 := time.Now()
		fn(s)
		sv.solveNs[s].n += time.Since(t0).Nanoseconds()
	}
	w := sv.workers
	if w > len(queue) {
		w = len(queue)
	}
	if w <= 1 {
		for _, s := range queue {
			if sv.aborted.Load() {
				return
			}
			timed(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if int(i) >= len(queue) || sv.aborted.Load() {
					return
				}
				timed(queue[i])
			}
		}()
	}
	wg.Wait()
}

// allShards is the round-0 queue.
func (sv *solver) allShards() []int32 {
	q := make([]int32, sv.k)
	for i := range q {
		q[i] = int32(i)
	}
	return q
}

// solveL1 runs level-1 merge rounds to the global fixpoint: every
// queued shard solves its local constraints to quiescence against the
// current snapshots, then the merge step republishes changed exported
// variables and queues their readers. Terminates because values only
// grow in a finite lattice; on termination the snapshots equal the
// live values, so every constraint — including cross-shard ones — is
// satisfied, and every union was constraint-derived, so the valuation
// is the least fixpoint.
func (sv *solver) solveL1() {
	queue := sv.allShards()
	inQueue := make([]bool, sv.k)
	for {
		sv.roundsL1++
		sv.runShards(queue, sv.l1Local)
		if sv.aborted.Load() {
			return
		}
		var next []int32
		for slot, v := range sv.setSlotVar {
			if !sv.setChanged[v] {
				continue
			}
			sv.setChanged[v] = false
			// Values grow monotonically, so union == copy here.
			sv.setSnap[slot].UnionWith(sv.setVals[v])
			for _, rs := range sv.setReaders[slot] {
				if !inQueue[rs] {
					inQueue[rs] = true
					next = append(next, rs)
				}
			}
		}
		if len(next) == 0 {
			return
		}
		for _, s := range next {
			inQueue[s] = false
		}
		queue = next
	}
}

// l1Local solves shard s's level-1 constraints to a local fixpoint,
// reading foreign variables from the snapshots.
func (sv *solver) l1Local(s int32) {
	sys := sv.sys
	cd := cancelStride
	evals := &sv.evals[s].n
	for {
		changed := false
		for _, ci := range sv.l1Of[s] {
			c := &sys.L1s[ci]
			*evals++
			if sv.tick(&cd) {
				return
			}
			lhs := sv.setVals[c.LHS]
			if c.Const != nil && lhs.UnionWith(c.Const) {
				sv.markSet(c.LHS)
				changed = true
			}
			for _, v := range c.Vars {
				src := sv.setVals[v]
				if sv.setShard[v] != s {
					src = sv.setSnap[sv.setSnapIdx[v]]
				}
				if lhs.UnionWith(src) {
					sv.markSet(c.LHS)
					changed = true
				}
			}
		}
		for _, ci := range sv.subOf[s] {
			c := &sys.Subsets[ci]
			*evals++
			if sv.tick(&cd) {
				return
			}
			src := sv.setVals[c.Sub]
			if sv.setShard[c.Sub] != s {
				src = sv.setSnap[sv.setSnapIdx[c.Sub]]
			}
			if sv.setVals[c.Sup].UnionWith(src) {
				sv.markSet(c.Sup)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

func (sv *solver) markSet(v constraints.SetVar) {
	if sv.setSnapIdx[v] >= 0 {
		sv.setChanged[v] = true
	}
}

func (sv *solver) markPair(v constraints.PairVar) {
	if sv.pairSnapIdx[v] >= 0 {
		sv.pairChanged[v] = true
	}
}

// solveL2 mirrors solveL1 for the level-2 system. Round 0 also folds
// the cross terms (level 1 is at its global fixpoint, so every cross
// term is a constant pair set — phase 3 of Section 5.3); since round 0
// queues every shard, each cross term is folded exactly once.
func (sv *solver) solveL2() {
	if sv.aborted.Load() {
		return
	}
	queue := sv.allShards()
	inQueue := make([]bool, sv.k)
	fold := true
	for {
		sv.roundsL2++
		doFold := fold
		fold = false
		sv.runShards(queue, func(s int32) { sv.l2Local(s, doFold) })
		if sv.aborted.Load() {
			return
		}
		var next []int32
		for slot, v := range sv.pairSlotVar {
			if !sv.pairChanged[v] {
				continue
			}
			sv.pairChanged[v] = false
			sv.pairSnap.Union(slot, sv.pairVals, int(v))
			for _, rs := range sv.pairReaders[slot] {
				if !inQueue[rs] {
					inQueue[rs] = true
					next = append(next, rs)
				}
			}
		}
		if len(next) == 0 {
			return
		}
		for _, s := range next {
			inQueue[s] = false
		}
		queue = next
	}
}

// l2Local solves shard s's level-2 constraints to a local fixpoint.
// Set values are frozen by now and read directly wherever they live.
func (sv *solver) l2Local(s int32, fold bool) {
	sys := sv.sys
	cd := cancelStride
	evals := &sv.evals[s].n
	if fold {
		for _, ci := range sv.l2Of[s] {
			c := &sys.L2s[ci]
			for _, ct := range c.Crosses {
				*evals++
				if sv.tick(&cd) {
					return
				}
				if sv.pairVals.CrossSym(int(c.LHS), ct.Const, sv.setVals[ct.Var], sys.PhaseCode) {
					sv.markPair(c.LHS)
				}
			}
		}
	}
	for {
		changed := false
		for _, ci := range sv.l2Of[s] {
			c := &sys.L2s[ci]
			for _, v := range c.Pairs {
				*evals++
				if sv.tick(&cd) {
					return
				}
				var ch bool
				if sv.pairShard[v] != s {
					ch = sv.pairVals.Union(int(c.LHS), sv.pairSnap, int(sv.pairSnapIdx[v]))
				} else {
					ch = sv.pairVals.Union(int(c.LHS), sv.pairVals, int(v))
				}
				if ch {
					sv.markPair(c.LHS)
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}
