// Package runtime executes FX10 programs with real parallelism:
// every async spawns a goroutine and every finish is a structured
// join scope (a WaitGroup that every async transitively spawned in
// the scope's body registers with, until an inner finish opens a new
// scope). This is the execution substrate the formal interleaving
// semantics of internal/machine models; differential tests check the
// two agree (exactly on race-free programs, within the reachable
// final-state set on racy ones).
//
// Instructions are atomic: array reads and writes take a lock, which
// matches the interleaving semantics' per-instruction granularity.
// FX10 is Turing-complete, so Run is fuel-bounded; exceeding the fuel
// aborts all activities and returns ErrFuelExhausted.
package runtime

import (
	"errors"
	"sync"
	"sync/atomic"

	"fx10/internal/syntax"
)

// ErrFuelExhausted is returned when a run exceeds its step budget.
var ErrFuelExhausted = errors.New("runtime: step budget exhausted")

// Options configures a run.
type Options struct {
	// MaxGoroutines bounds the number of concurrently live async
	// goroutines; when the bound is reached, asyncs degrade to inline
	// (sequential) execution — a legal interleaving — rather than
	// blocking, which could deadlock against a waiting finish.
	// 0 means unbounded.
	MaxGoroutines int
	// MaxSteps is the instruction budget across all activities.
	// 0 means DefaultMaxSteps.
	MaxSteps int64
}

// DefaultMaxSteps is the fuel used when Options.MaxSteps is 0.
const DefaultMaxSteps = 10_000_000

// Result reports a completed run.
type Result struct {
	// Array is the final array state; per the paper, the program's
	// result is Array[0].
	Array []int64
	// Steps is the number of instructions executed.
	Steps int64
	// Spawned is the number of asyncs that became goroutines.
	Spawned int64
	// Inlined is the number of asyncs executed inline because the
	// goroutine bound was reached.
	Inlined int64
	// MaxLive is the maximum number of concurrently live async
	// goroutines observed.
	MaxLive int64
}

// Run executes p from the initial array a0 (nil means all zeros).
func Run(p *syntax.Program, a0 []int64, opts Options) (Result, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	r := &runner{p: p, a: make([]int64, p.ArrayLen), maxSteps: maxSteps}
	copy(r.a, a0)
	if opts.MaxGoroutines > 0 {
		r.sem = make(chan struct{}, opts.MaxGoroutines)
	}

	var root sync.WaitGroup
	r.exec(p.Main().Body, &root)
	// Main's body may leave asyncs running (no implicit top-level
	// finish in the calculus, but a complete execution means the
	// whole tree reaches √, so we join them before reporting).
	root.Wait()

	res := Result{
		Array:   r.a,
		Steps:   r.steps.Load(),
		Spawned: r.spawned.Load(),
		Inlined: r.inlined.Load(),
		MaxLive: r.maxLive.Load(),
	}
	if r.aborted.Load() {
		return res, ErrFuelExhausted
	}
	return res, nil
}

type runner struct {
	p        *syntax.Program
	mu       sync.Mutex
	a        []int64
	steps    atomic.Int64
	maxSteps int64
	aborted  atomic.Bool

	sem     chan struct{}
	spawned atomic.Int64
	inlined atomic.Int64
	live    atomic.Int64
	maxLive atomic.Int64
}

// step burns one unit of fuel; it reports false when the run must
// abort.
func (r *runner) step() bool {
	if r.steps.Add(1) > r.maxSteps {
		r.aborted.Store(true)
	}
	return !r.aborted.Load()
}

// load reads a[d] atomically.
func (r *runner) load(d int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.a[d]
}

// store executes a[d] = e atomically (the expression read and the
// write are one instruction in the semantics).
func (r *runner) store(d int, e syntax.Expr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e := e.(type) {
	case syntax.Const:
		r.a[d] = e.C
	case syntax.Plus:
		r.a[d] = r.a[e.D] + 1
	}
}

// exec runs the statement sequentially in the current goroutine.
// scope is the innermost enclosing finish scope (or the root scope);
// asyncs register with it.
func (r *runner) exec(s *syntax.Stmt, scope *sync.WaitGroup) {
	for cur := s; cur != nil; cur = cur.Next {
		if !r.step() {
			return
		}
		switch i := cur.Instr.(type) {
		case *syntax.Skip:
			// No effect.

		case *syntax.Next:
			// Clock erasure (see internal/machine); the faithful
			// barrier semantics lives in internal/clocks.

		case *syntax.Assign:
			r.store(i.D, i.Rhs)

		case *syntax.While:
			for r.load(i.D) != 0 {
				r.exec(i.Body, scope)
				if !r.step() { // the guard re-check is a step
					return
				}
			}

		case *syntax.Async:
			r.spawn(i.Body, scope)

		case *syntax.Finish:
			var inner sync.WaitGroup
			r.exec(i.Body, &inner)
			inner.Wait()

		case *syntax.Call:
			r.exec(r.p.Methods[i.Method].Body, scope)
		}
	}
}

// spawn runs an async body: as a goroutine when a slot is available,
// inline otherwise. Either way the body belongs to the current scope.
func (r *runner) spawn(body *syntax.Stmt, scope *sync.WaitGroup) {
	scope.Add(1)
	if r.sem != nil {
		select {
		case r.sem <- struct{}{}:
		default:
			// No slot: run inline; still a valid interleaving.
			r.inlined.Add(1)
			r.exec(body, scope)
			scope.Done()
			return
		}
	}
	r.spawned.Add(1)
	live := r.live.Add(1)
	for {
		prev := r.maxLive.Load()
		if live <= prev || r.maxLive.CompareAndSwap(prev, live) {
			break
		}
	}
	go func() {
		defer func() {
			r.live.Add(-1)
			if r.sem != nil {
				<-r.sem
			}
			scope.Done()
		}()
		r.exec(body, scope)
	}()
}
