// Package runtime executes FX10 programs with real parallelism:
// every async spawns a goroutine and every finish is a structured
// join scope (a WaitGroup that every async transitively spawned in
// the scope's body registers with, until an inner finish opens a new
// scope). This is the execution substrate the formal interleaving
// semantics of internal/machine models; differential tests check the
// two agree (exactly on race-free programs, within the reachable
// final-state set on racy ones).
//
// Instructions are atomic: array reads and writes take a lock, which
// matches the interleaving semantics' per-instruction granularity.
// FX10 is Turing-complete, so Run is fuel-bounded; exceeding the fuel
// aborts all activities and returns ErrFuelExhausted.
//
// With Options.RecordParallel the run additionally records every
// observed parallel label pair (see observer) into Result.Observed —
// the dynamic lower bound the differential fuzzer checks against the
// exact explorer and the static analysis.
package runtime

import (
	"errors"
	"sync"
	"sync/atomic"

	"fx10/internal/intset"
	"fx10/internal/syntax"
)

// ErrFuelExhausted is returned when a run exceeds its step budget.
var ErrFuelExhausted = errors.New("runtime: step budget exhausted")

// Options configures a run.
type Options struct {
	// MaxGoroutines bounds the number of concurrently live async
	// goroutines; when the bound is reached, asyncs degrade to inline
	// (sequential) execution — a legal interleaving — rather than
	// blocking, which could deadlock against a waiting finish.
	// 0 means unbounded.
	MaxGoroutines int
	// MaxSteps is the instruction budget across all activities.
	// 0 means DefaultMaxSteps.
	MaxSteps int64
	// RecordParallel enables the parallel-pair instrumentation:
	// Result.Observed is populated with every label pair seen
	// executing in parallel during this run. Recording serializes
	// instruction effects through one lock, so it trades throughput
	// for a soundness guarantee (Observed ⊆ MHP(p)); leave it off on
	// performance-sensitive runs.
	RecordParallel bool
	// Seed seeds the schedule perturbation applied while recording
	// (random yields and microsleeps), so repeated runs explore
	// different interleavings. Only consulted when RecordParallel is
	// set.
	Seed int64
}

// DefaultMaxSteps is the fuel used when Options.MaxSteps is 0.
const DefaultMaxSteps = 10_000_000

// Result reports a completed run.
type Result struct {
	// Array is the final array state; per the paper, the program's
	// result is Array[0].
	Array []int64
	// Steps is the number of instructions executed. The fuel counter
	// is claimed with a CAS, so Steps never exceeds the budget even
	// when many activities race for the last units.
	Steps int64
	// Spawned is the number of asyncs that became goroutines.
	Spawned int64
	// Inlined is the number of asyncs executed inline because the
	// goroutine bound was reached.
	Inlined int64
	// MaxLive is the maximum number of concurrently live async
	// goroutines observed.
	MaxLive int64
	// Observed is the set of observed parallel label pairs (symmetric;
	// a lower bound on the exact MHP relation). Nil unless
	// Options.RecordParallel was set.
	Observed *intset.PairSet
}

// Run executes p from the initial array a0 (nil means all zeros).
//
// On ErrFuelExhausted every activity stops at its next step and all
// spawned goroutines drain before Run returns: the returned Result is
// complete and no goroutines leak from an aborted run.
func Run(p *syntax.Program, a0 []int64, opts Options) (Result, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	r := &runner{p: p, a: make([]int64, p.ArrayLen), maxSteps: maxSteps}
	copy(r.a, a0)
	if opts.MaxGoroutines > 0 {
		r.sem = make(chan struct{}, opts.MaxGoroutines)
	}
	if opts.RecordParallel {
		r.obs = newObserver(p.NumLabels(), opts.Seed)
	}

	var root sync.WaitGroup
	r.exec(p.Main().Body, &root, 0)
	// Main's body may leave asyncs running (no implicit top-level
	// finish in the calculus, but a complete execution means the
	// whole tree reaches √, so we join them before reporting). Main's
	// own front is cleared first: while joining it is not runnable.
	r.depart(0)
	root.Wait()

	res := Result{
		Array:   r.a,
		Steps:   r.steps.Load(),
		Spawned: r.spawned.Load(),
		Inlined: r.inlined.Load(),
		MaxLive: r.maxLive.Load(),
	}
	if r.obs != nil {
		res.Observed = r.obs.pairs
	}
	if r.aborted.Load() {
		return res, ErrFuelExhausted
	}
	return res, nil
}

type runner struct {
	p        *syntax.Program
	mu       sync.Mutex
	a        []int64
	steps    atomic.Int64
	maxSteps int64
	aborted  atomic.Bool

	sem     chan struct{}
	spawned atomic.Int64
	inlined atomic.Int64
	live    atomic.Int64
	maxLive atomic.Int64

	obs     *observer // nil unless Options.RecordParallel
	nextAct atomic.Int64
}

// step claims one unit of fuel; it reports false when the run must
// abort. The claim is a CAS loop rather than a blind Add so the
// counter is exact: once the budget is reached no activity can push
// Steps past it, and every activity observes the abort on its next
// step.
func (r *runner) step() bool {
	for {
		if r.aborted.Load() {
			return false
		}
		cur := r.steps.Load()
		if cur >= r.maxSteps {
			r.aborted.Store(true)
			return false
		}
		if r.steps.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// load reads a[d] atomically.
func (r *runner) load(d int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.a[d]
}

// store executes a[d] = e atomically (the expression read and the
// write are one instruction in the semantics).
func (r *runner) store(d int, e syntax.Expr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e := e.(type) {
	case syntax.Const:
		r.a[d] = e.C
	case syntax.Plus:
		r.a[d] = r.a[e.D] + 1
	}
}

// arrive, commit and depart forward to the observer when recording is
// on; otherwise commit just runs the effect. See observer for the
// protocol.
func (r *runner) arrive(act int, l syntax.Label) {
	if r.obs != nil {
		r.obs.arrive(act, l)
	}
}

func (r *runner) commit(act int, l syntax.Label, effect func()) {
	if r.obs == nil {
		if effect != nil {
			effect()
		}
		return
	}
	r.obs.commit(act, l, effect)
}

func (r *runner) depart(act int) {
	if r.obs != nil {
		r.obs.depart(act)
	}
}

// guard commits one while-guard evaluation (a machine step) and
// reports whether the loop continues.
func (r *runner) guard(act int, l syntax.Label, d int) bool {
	var g int64
	r.commit(act, l, func() { g = r.load(d) })
	return g != 0
}

// exec runs the statement sequentially in the current goroutine.
// scope is the innermost enclosing finish scope (or the root scope);
// asyncs register with it. act identifies the executing activity for
// the observer: an inlined async body keeps its parent's identity
// (the parent is blocked while it runs, so they are one sequential
// activity).
func (r *runner) exec(s *syntax.Stmt, scope *sync.WaitGroup, act int) {
	for cur := s; cur != nil; cur = cur.Next {
		l := cur.Instr.Label()
		r.arrive(act, l)
		if !r.step() {
			r.depart(act)
			return
		}
		switch i := cur.Instr.(type) {
		case *syntax.Skip:
			r.commit(act, l, nil)

		case *syntax.Next:
			// Clock erasure (see internal/machine); the faithful
			// barrier semantics lives in internal/clocks.
			r.commit(act, l, nil)

		case *syntax.Assign:
			r.commit(act, l, func() { r.store(i.D, i.Rhs) })

		case *syntax.While:
			for r.guard(act, l, i.D) {
				r.exec(i.Body, scope, act)
				r.arrive(act, l)
				if !r.step() { // the guard re-check is a step
					r.depart(act)
					return
				}
			}

		case *syntax.Async:
			r.commit(act, l, nil)
			r.spawn(i.Body, scope, act)

		case *syntax.Finish:
			r.commit(act, l, nil)
			var inner sync.WaitGroup
			r.exec(i.Body, &inner, act)
			r.depart(act) // blocked at the join: not a front
			inner.Wait()

		case *syntax.Call:
			r.commit(act, l, nil)
			r.exec(r.p.Methods[i.Method].Body, scope, act)
		}
	}
}

// spawn runs an async body: as a goroutine when a slot is available,
// inline otherwise. Either way the body belongs to the current scope,
// and the scope's WaitGroup is balanced on every path — the inline
// path and the goroutine path each pair the single Add with exactly
// one Done, including when the body aborts on fuel exhaustion.
func (r *runner) spawn(body *syntax.Stmt, scope *sync.WaitGroup, act int) {
	scope.Add(1)
	if r.sem != nil {
		select {
		case r.sem <- struct{}{}:
		default:
			// No slot: run inline; still a valid interleaving.
			r.inlined.Add(1)
			r.exec(body, scope, act)
			scope.Done()
			return
		}
	}
	r.spawned.Add(1)
	live := r.live.Add(1)
	for {
		prev := r.maxLive.Load()
		if live <= prev || r.maxLive.CompareAndSwap(prev, live) {
			break
		}
	}
	child := int(r.nextAct.Add(1))
	go func() {
		defer func() {
			r.depart(child)
			r.live.Add(-1)
			if r.sem != nil {
				<-r.sem
			}
			scope.Done()
		}()
		r.exec(body, scope, child)
	}()
}
