package runtime

import (
	"errors"
	gort "runtime"
	"testing"
	"time"

	"fx10/internal/explore"
	"fx10/internal/intset"
	"fx10/internal/parser"
	"fx10/internal/progen"
)

// TestObservedSubsetOfExact is the core soundness property of the
// instrumentation: every pair a recorded run observes must be in the
// exact MHP relation computed by exhaustive exploration.
func TestObservedSubsetOfExact(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.Generate(seed, progen.Finite())
		res := explore.MHP(p, nil, 300_000)
		if !res.Complete {
			t.Fatalf("seed %d: exploration incomplete", seed)
		}
		for run := int64(0); run < 4; run++ {
			out, err := Run(p, nil, Options{RecordParallel: true, Seed: seed*100 + run})
			if err != nil {
				t.Fatalf("seed %d run %d: %v", seed, run, err)
			}
			if out.Observed == nil {
				t.Fatalf("seed %d: RecordParallel produced no pair set", seed)
			}
			if !out.Observed.SubsetOf(res.MHP) {
				t.Fatalf("seed %d run %d: observed %v not ⊆ exact %v",
					seed, run, out.Observed, res.MHP)
			}
		}
	}
}

// TestObservedFindsParallelism checks that the instrumentation is not
// vacuous: across repeated runs of a program with forced parallelism,
// at least one pair is observed.
func TestObservedFindsParallelism(t *testing.T) {
	p := parser.MustParse(`
array 4;
void main() {
  finish {
    A: async { W: a[1] = 41; X: a[1] = a[1] + 1; Y: skip; }
    B: async { V: a[2] = 1; U: a[2] = a[2] + 1; Z: skip; }
  }
}
`)
	union := intset.NewPairs(p.NumLabels())
	for run := int64(0); run < 200 && union.Empty(); run++ {
		out, err := Run(p, nil, Options{RecordParallel: true, Seed: run})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		union.UnionWith(out.Observed)
	}
	if union.Empty() {
		t.Fatalf("200 recorded runs of a two-async program observed no parallel pair")
	}
}

// TestObservedOffByDefault: without RecordParallel the result carries
// no pair set and execution takes the uninstrumented path.
func TestObservedOffByDefault(t *testing.T) {
	p := progen.Generate(1, progen.Finite())
	out, err := Run(p, nil, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Observed != nil {
		t.Fatalf("Observed = %v without RecordParallel", out.Observed)
	}
}

// divergent is a program whose asyncs spin forever: the canonical
// fuel-exhaustion workload.
const divergent = `
array 2;
void main() {
  a[0] = 1;
  finish {
    async { while (a[0] != 0) { skip; } }
    async { while (a[0] != 0) { skip; } }
    async { while (a[0] != 0) { a[1] = a[1] + 1; } }
  }
}
`

// TestAbortedRunGoroutineBaseline asserts the ErrFuelExhausted
// shutdown audit: after an aborted run every spawned goroutine has
// exited and the process goroutine count returns to its baseline.
func TestAbortedRunGoroutineBaseline(t *testing.T) {
	p := parser.MustParse(divergent)
	baseline := gort.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		_, err := Run(p, nil, Options{MaxSteps: 2000})
		if !errors.Is(err, ErrFuelExhausted) {
			t.Fatalf("trial %d: err = %v, want ErrFuelExhausted", trial, err)
		}
	}
	// Run joins its goroutines before returning, so the count should
	// already be back; allow a brief grace period for unrelated
	// scheduler noise.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := gort.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d: aborted runs leaked", gort.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStepsNeverExceedBudget asserts the CAS fuel claim: even with
// many activities racing for the last units, Steps stops exactly at
// the budget.
func TestStepsNeverExceedBudget(t *testing.T) {
	p := parser.MustParse(divergent)
	for _, budget := range []int64{1, 7, 100, 3001} {
		res, err := Run(p, nil, Options{MaxSteps: budget})
		if !errors.Is(err, ErrFuelExhausted) {
			t.Fatalf("budget %d: err = %v, want ErrFuelExhausted", budget, err)
		}
		if res.Steps != budget {
			t.Fatalf("budget %d: Steps = %d, want exactly the budget", budget, res.Steps)
		}
	}
}

// TestAbortAtInlineDegradeBoundary exercises fuel exhaustion while
// the goroutine bound is forcing inline execution: the WaitGroup
// bookkeeping must stay balanced (no double-Done panic, no hang) and
// no goroutine may leak.
func TestAbortAtInlineDegradeBoundary(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  a[0] = 1;
  finish {
    async { async { async { while (a[0] != 0) { skip; } } } }
    async { while (a[0] != 0) { skip; } }
    async { while (a[0] != 0) { skip; } }
  }
}
`)
	baseline := gort.NumGoroutine()
	for trial := int64(0); trial < 50; trial++ {
		_, err := Run(p, nil, Options{MaxGoroutines: 1, MaxSteps: 500 + trial*13})
		if !errors.Is(err, ErrFuelExhausted) {
			t.Fatalf("trial %d: err = %v, want ErrFuelExhausted", trial, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for gort.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d after aborted bounded runs", gort.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecordedRunMatchesSemantics: recording must not change what the
// program computes — final arrays of recorded runs stay within the
// machine-reachable set.
func TestRecordedRunMatchesSemantics(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  async { a[0] = 10; }
  a[1] = a[0] + 1;
}
`)
	finals, complete := explore.ReachableFinals(p, nil, 1_000_000)
	if !complete {
		t.Fatalf("exploration incomplete")
	}
	for run := int64(0); run < 100; run++ {
		res, err := Run(p, nil, Options{RecordParallel: true, Seed: run})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		key := ""
		for i, v := range res.Array {
			if i > 0 {
				key += " "
			}
			key += string(rune('0' + v))
		}
		found := false
		for _, f := range finals {
			match := len(f) == len(res.Array)
			for i := range f {
				if match && f[i] != res.Array[i] {
					match = false
				}
			}
			if match {
				found = true
			}
		}
		if !found {
			t.Fatalf("run %d: recorded run reached array %v unreachable in the formal semantics", run, res.Array)
		}
	}
}
