package runtime

import (
	"errors"
	"testing"

	"fx10/internal/explore"
	"fx10/internal/fixtures"
	"fx10/internal/parser"
)

func TestSequentialProgram(t *testing.T) {
	p := parser.MustParse(`
array 3;
void main() {
  a[0] = 41;
  a[1] = a[0] + 1;
  a[2] = a[1] + 1;
}
`)
	res, err := Run(p, nil, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Array[0] != 41 || res.Array[1] != 42 || res.Array[2] != 43 {
		t.Fatalf("array = %v", res.Array)
	}
	if res.Spawned != 0 {
		t.Fatalf("spawned %d goroutines for sequential program", res.Spawned)
	}
}

func TestFinishJoinsTransitively(t *testing.T) {
	// Nested asyncs inside one finish: the finish must wait for all
	// of them, including async-spawned asyncs.
	p := parser.MustParse(`
array 4;
void main() {
  finish {
    async {
      async { a[0] = 1; }
      a[1] = 1;
    }
    async { a[2] = 1; }
  }
  a[3] = a[0] + 1;
}
`)
	for trial := 0; trial < 200; trial++ {
		res, err := Run(p, nil, Options{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Array[0] != 1 || res.Array[1] != 1 || res.Array[2] != 1 {
			t.Fatalf("trial %d: asyncs not joined: %v", trial, res.Array)
		}
		if res.Array[3] != 2 {
			t.Fatalf("trial %d: finish did not order the read: %v", trial, res.Array)
		}
	}
}

func TestInnerFinishScopes(t *testing.T) {
	// An inner finish opens its own scope: the outer statement after
	// the inner finish must observe the inner async's write.
	p := parser.MustParse(`
array 2;
void main() {
  async {
    finish {
      async { a[0] = 7; }
    }
    a[1] = a[0] + 1;
  }
}
`)
	for trial := 0; trial < 100; trial++ {
		res, err := Run(p, nil, Options{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Array[1] != 8 {
			t.Fatalf("trial %d: inner finish did not wait: %v", trial, res.Array)
		}
	}
}

// Differential test against the formal semantics: every observed
// final array of a racy program must be a final state the
// interleaving semantics can reach.
func TestDifferentialAgainstExplorer(t *testing.T) {
	src := `
array 2;
void main() {
  async { a[0] = 10; }
  a[1] = a[0] + 1;
}
`
	p := parser.MustParse(src)
	finals, complete := explore.ReachableFinals(p, nil, 1_000_000)
	if !complete {
		t.Fatalf("exploration incomplete")
	}
	seen := map[string]bool{}
	for trial := 0; trial < 300; trial++ {
		res, err := Run(p, nil, Options{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		key := ""
		for _, v := range res.Array {
			key += string(rune('0'+v)) + ","
		}
		_ = key
		found := false
		for _, f := range finals {
			match := len(f) == len(res.Array)
			for i := range f {
				if f[i] != res.Array[i] {
					match = false
				}
			}
			if match {
				found = true
				seen[f.Key()] = true
			}
		}
		if !found {
			t.Fatalf("runtime reached array %v unreachable in the formal semantics", res.Array)
		}
	}
	if len(seen) == 0 {
		t.Fatalf("no finals observed")
	}
}

func TestPaperExamplesRun(t *testing.T) {
	for _, src := range []string{fixtures.Example21Source, fixtures.Example22Source} {
		p := parser.MustParse(src)
		res, err := Run(p, nil, Options{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Spawned+res.Inlined == 0 {
			t.Fatalf("no asyncs executed")
		}
	}
}

func TestFuelExhaustion(t *testing.T) {
	p := parser.MustParse(`
array 1;
void main() {
  a[0] = 1;
  while (a[0] != 0) { skip; }
}
`)
	_, err := Run(p, nil, Options{MaxSteps: 1000})
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("err = %v, want ErrFuelExhausted", err)
	}
}

func TestFuelExhaustionInAsync(t *testing.T) {
	// Divergence inside an async must also abort the whole run
	// rather than hanging the join.
	p := parser.MustParse(`
array 1;
void main() {
  finish {
    async {
      a[0] = 1;
      while (a[0] != 0) { skip; }
    }
  }
}
`)
	_, err := Run(p, nil, Options{MaxSteps: 1000})
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("err = %v, want ErrFuelExhausted", err)
	}
}

func TestGoroutineBoundInlines(t *testing.T) {
	p := parser.MustParse(`
array 1;
void main() {
  finish {
    async { async { async { async { skip; } } } }
    async { skip; }
    async { skip; }
    async { skip; }
  }
}
`)
	res, err := Run(p, nil, Options{MaxGoroutines: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined == 0 {
		t.Fatalf("bound 1 did not inline any asyncs (spawned=%d)", res.Spawned)
	}
	if res.MaxLive > 1 {
		t.Fatalf("MaxLive = %d exceeds bound", res.MaxLive)
	}
}

func TestManyAsyncsFanOut(t *testing.T) {
	// A fan-out of asyncs via recursion-free repetition: the runtime
	// must join them all.
	src := `
array 8;
void w0() { async { a[0] = 1; } }
void w1() { async { a[1] = 1; } }
void w2() { async { a[2] = 1; } }
void w3() { async { a[3] = 1; } }
void main() {
  finish {
    w0(); w1(); w2(); w3();
    w0(); w1(); w2(); w3();
  }
  a[4] = a[0] + 1;
}
`
	p := parser.MustParse(src)
	res, err := Run(p, nil, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for d := 0; d < 4; d++ {
		if res.Array[d] != 1 {
			t.Fatalf("worker %d write lost: %v", d, res.Array)
		}
	}
	if res.Array[4] != 2 {
		t.Fatalf("join ordering broken: %v", res.Array)
	}
	if res.Spawned+res.Inlined != 8 {
		t.Fatalf("asyncs executed = %d, want 8", res.Spawned+res.Inlined)
	}
}

func TestGuardReCheckCountsSteps(t *testing.T) {
	// A loop that exits normally must count guard re-checks but not
	// abort within a generous budget.
	p := parser.MustParse(`
array 2;
void main() {
  a[0] = 1;
  while (a[0] != 0) { a[0] = 0; }
}
`)
	res, err := Run(p, nil, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps < 4 { // assign, while, body assign, re-check
		t.Fatalf("steps = %d, want ≥ 4", res.Steps)
	}
}
