package runtime

import (
	"math/rand"
	gort "runtime"
	"sync"
	"time"

	"fx10/internal/intset"
	"fx10/internal/syntax"
)

// observer implements the Options.RecordParallel instrumentation: it
// tracks, per activity, the label of the instruction the activity has
// arrived at but not yet executed (its "front", the runtime analogue
// of the machine's FTlabels), and records a pair whenever one
// activity executes an instruction while another is parked at a
// front.
//
// Soundness (observed ⊆ exact MHP) rests on a two-phase protocol:
//
//  1. arrive(act, l) — the activity's next instruction is l; the
//     front map is updated under the observer lock.
//  2. commit(act, l, effect) — the instruction executes. Pairing with
//     every other registered front AND the instruction's effect run
//     in one critical section, and the activity's front is cleared
//     before the lock is released.
//
// Because effects are serialized by the observer lock, the sequence
// of commits is a legal interleaving of the formal semantics, and at
// the moment act commits l every other registered front l' belongs to
// an activity that has arrived at l' but not executed it — i.e. the
// interleaving is in a state where both labels are fronts of parallel
// leaves, so (l, l') ∈ parallel(state) ⊆ MHP(p). Fronts are cleared
// while an activity is blocked joining a finish scope (its
// continuation is not a front: parallel(T1 ▷ T2) = parallel(T1)) and
// when it terminates.
//
// The protocol under-approximates on purpose: a front that is stale
// (between an instruction's commit and the next arrive) is absent
// from the map, so a pair may be missed but never invented.
type observer struct {
	mu    sync.Mutex
	cur   map[int]syntax.Label // activity id → front label
	pairs *intset.PairSet
	rng   *rand.Rand // schedule perturbation; guarded by mu
}

func newObserver(numLabels int, seed int64) *observer {
	return &observer{
		cur:   map[int]syntax.Label{},
		pairs: intset.NewPairs(numLabels),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// arrive registers l as act's front and occasionally perturbs the Go
// scheduler (seeded) so repeated runs observe different
// interleavings.
func (o *observer) arrive(act int, l syntax.Label) {
	o.mu.Lock()
	o.cur[act] = l
	jitter := o.rng.Intn(16)
	var pause time.Duration
	if jitter == 0 {
		pause = time.Duration(1+o.rng.Intn(20)) * time.Microsecond
	}
	o.mu.Unlock()
	switch {
	case pause > 0:
		time.Sleep(pause)
	case jitter <= 3:
		gort.Gosched()
	}
}

// commit records l against every other registered front, runs the
// instruction's effect (nil for pure control flow) in the same
// critical section, and clears act's front.
func (o *observer) commit(act int, l syntax.Label, effect func()) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for other, ol := range o.cur {
		if other != act {
			o.pairs.AddSym(int(l), int(ol))
		}
	}
	if effect != nil {
		effect()
	}
	delete(o.cur, act)
}

// depart clears act's front without executing anything: the activity
// is blocked at a join or has terminated.
func (o *observer) depart(act int) {
	o.mu.Lock()
	delete(o.cur, act)
	o.mu.Unlock()
}
