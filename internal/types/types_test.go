package types

import (
	"math/rand"
	"strings"
	"testing"

	"fx10/internal/fixtures"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

// expectedPairs builds the symmetric closure of named label pairs.
func expectedPairs(t *testing.T, p *syntax.Program, pairs [][2]string) *intset.PairSet {
	t.Helper()
	out := intset.NewPairs(p.NumLabels())
	for _, pr := range pairs {
		l1, ok1 := p.LabelByName(pr[0])
		l2, ok2 := p.LabelByName(pr[1])
		if !ok1 || !ok2 {
			t.Fatalf("labels %v not found", pr)
		}
		out.AddSym(int(l1), int(l2))
	}
	return out
}

// pairNames renders a pair set with display names for diagnostics.
func pairNames(p *syntax.Program, m *intset.PairSet) string {
	var b strings.Builder
	m.Each(func(i, j int) {
		if i <= j {
			b.WriteString("(" + p.LabelName(syntax.Label(i)) + "," + p.LabelName(syntax.Label(j)) + ") ")
		}
	})
	return b.String()
}

func inferMain(t *testing.T, p *syntax.Program) (*Checker, InferResult) {
	t.Helper()
	c := NewChecker(labels.Compute(p))
	res := c.Infer()
	if err := c.Check(res.Env); err != nil {
		t.Fatalf("inferred environment fails Check: %v", err)
	}
	return c, res
}

// The paper's Section 2.1 example: the analysis result must be
// exactly the pairs reported in the paper — no more, no fewer
// ("our algorithm determines the best possible may-happen-in-parallel
// information").
func TestExample21ExactMHP(t *testing.T) {
	p := fixtures.Example21()
	_, res := inferMain(t, p)
	want := expectedPairs(t, p, fixtures.Example21MHP)
	got := res.Env[p.MainIndex].M
	if !got.Equal(want) {
		t.Fatalf("M mismatch\n got: %v\nwant: %v", pairNames(p, got), pairNames(p, want))
	}
}

// The paper's Section 2.2 example, including the absence of the
// (S3, S4) false positive that a context-insensitive analysis would
// report.
func TestExample22ExactMHP(t *testing.T) {
	p := fixtures.Example22()
	_, res := inferMain(t, p)
	want := expectedPairs(t, p, fixtures.Example22MHP)
	got := res.Env[p.MainIndex].M
	if !got.Equal(want) {
		t.Fatalf("M mismatch\n got: %v\nwant: %v", pairNames(p, got), pairNames(p, want))
	}
	s3, _ := p.LabelByName("S3")
	s4, _ := p.LabelByName("S4")
	if got.Has(int(s3), int(s4)) {
		t.Fatalf("context-sensitive analysis produced the (S3,S4) false positive")
	}
}

// Method summaries of Section 2.2: f's O must be {S5} (the async body
// may outlive the call), and f's M must be empty under R = ∅.
func TestExample22MethodSummary(t *testing.T) {
	p := fixtures.Example22()
	_, res := inferMain(t, p)
	fi, _ := p.MethodIndex("f")
	s5, _ := p.LabelByName("S5")
	o := res.Env[fi].O
	if o.Len() != 1 || !o.Has(int(s5)) {
		t.Fatalf("O(f) = %v, want {S5}", o)
	}
	if !res.Env[fi].M.Empty() {
		t.Fatalf("M(f) = %v, want ∅", pairNames(p, res.Env[fi].M))
	}
}

// A while loop's body is assumed to execute at least twice, so an
// async in a loop may happen in parallel with itself (rule (53)).
func TestWhileAsyncSelfPair(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  W: while (a[0] != 0) {
    B: async { S1: skip; }
  }
  T: skip;
}
`)
	_, res := inferMain(t, p)
	m := res.Env[p.MainIndex].M
	s1, _ := p.LabelByName("S1")
	bl, _ := p.LabelByName("B")
	w, _ := p.LabelByName("W")
	tl, _ := p.LabelByName("T")
	if !m.Has(int(s1), int(s1)) {
		t.Fatalf("missing self pair (S1,S1): %s", pairNames(p, m))
	}
	if !m.Has(int(s1), int(bl)) || !m.Has(int(s1), int(w)) {
		t.Fatalf("missing loop-carried pairs: %s", pairNames(p, m))
	}
	// The loop's O carries S1 into the continuation.
	if !m.Has(int(s1), int(tl)) {
		t.Fatalf("missing (S1,T): %s", pairNames(p, m))
	}
}

// A finish around the loop body cuts the self pair.
func TestFinishInLoopCutsSelfPair(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  W: while (a[0] != 0) {
    F: finish {
      B: async { S1: skip; }
    }
  }
  T: skip;
}
`)
	_, res := inferMain(t, p)
	m := res.Env[p.MainIndex].M
	s1, _ := p.LabelByName("S1")
	tl, _ := p.LabelByName("T")
	if m.Has(int(s1), int(s1)) {
		t.Fatalf("finish-wrapped loop async still pairs with itself: %s", pairNames(p, m))
	}
	if m.Has(int(s1), int(tl)) {
		t.Fatalf("finish did not cut (S1,T): %s", pairNames(p, m))
	}
}

// Two asyncs in the same finish pair with each other; statements
// after the finish pair with neither.
func TestFinishScope(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  F: finish {
    B1: async { S1: skip; }
    B2: async { S2: skip; }
  }
  T: skip;
}
`)
	_, res := inferMain(t, p)
	m := res.Env[p.MainIndex].M
	g := func(a, b string) bool {
		la, _ := p.LabelByName(a)
		lb, _ := p.LabelByName(b)
		return m.Has(int(la), int(lb))
	}
	if !g("S1", "S2") || !g("S1", "B2") {
		t.Fatalf("asyncs in one finish must pair: %s", pairNames(p, m))
	}
	if g("S1", "T") || g("S2", "T") || g("F", "T") {
		t.Fatalf("statements after finish must not pair with its body: %s", pairNames(p, m))
	}
}

// Recursive methods must reach a fixpoint, and an async spawned
// before the recursive call pairs with the callee's body.
func TestRecursiveMethodInference(t *testing.T) {
	p := parser.MustParse(`
array 2;
void rec() {
  W: while (a[0] != 0) {
    B: async { S: skip; }
    C: rec();
  }
}
void main() {
  M: rec();
}
`)
	_, res := inferMain(t, p)
	ri, _ := p.MethodIndex("rec")
	m := res.Env[ri].M
	s, _ := p.LabelByName("S")
	cl, _ := p.LabelByName("C")
	if !m.Has(int(s), int(cl)) {
		t.Fatalf("async before recursive call must pair with the call: %s", pairNames(p, m))
	}
	if !m.Has(int(s), int(s)) {
		t.Fatalf("recursion + loop must give the self pair: %s", pairNames(p, m))
	}
}

func TestCheckRejectsWrongEnv(t *testing.T) {
	p := fixtures.Example22()
	c := NewChecker(labels.Compute(p))
	res := c.Infer()

	// Too-small environment (bottom) must fail: main's judged M under
	// bottom is non-empty while bottom's M is empty... main's M under
	// bottom may differ from bottom. Either way Check must fail.
	if err := c.Check(NewEnv(p)); err == nil {
		t.Fatalf("bottom environment unexpectedly checks")
	}

	// Perturbed O must fail.
	bad := res.Env.Clone()
	fi, _ := p.MethodIndex("f")
	s1, _ := p.LabelByName("S1")
	bad[fi].O.Add(int(s1))
	if err := c.Check(bad); err == nil {
		t.Fatalf("perturbed environment unexpectedly checks")
	}

	// Wrong length must fail.
	if err := c.Check(res.Env[:1]); err == nil {
		t.Fatalf("short environment unexpectedly checks")
	}
}

// A post-fixpoint above the least solution can still be a valid type
// (types are not unique): adding a self-consistent extra pair to a
// method that is never called cannot occur, but enlarging O of an
// uncalled method breaks nothing it participates in. We check instead
// the weaker, always-true property: the inferred env is the least one
// among fixpoints found from bottom (idempotence of re-inference).
func TestInferIdempotent(t *testing.T) {
	p := fixtures.Example21()
	c := NewChecker(labels.Compute(p))
	r1 := c.Infer()
	r2 := c.Infer()
	if !r1.Env.Equal(r2.Env) {
		t.Fatalf("Infer not deterministic")
	}
	if r1.Iterations < 2 {
		t.Fatalf("Iterations = %d, want ≥ 2", r1.Iterations)
	}
}

// Lemma 12 (principal typing): p,E,R ⊢ s : M,O iff
// M = Scross(s,R) ∪ M′ and O = R ∪ O′ where p,E,∅ ⊢ s : M′,O′.
func TestPrincipalTypingLemma12(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, src := range []string{fixtures.Example21Source, fixtures.Example22Source} {
		p := parser.MustParse(src)
		in := labels.Compute(p)
		c := NewChecker(in)
		env := c.Infer().Env
		n := p.NumLabels()
		for _, meth := range p.Methods {
			m0, o0 := c.JudgeStmt(env, intset.New(n), meth.Body)
			for trial := 0; trial < 10; trial++ {
				r := intset.New(n)
				for k := 0; k < rng.Intn(5); k++ {
					r.Add(rng.Intn(n))
				}
				m, o := c.JudgeStmt(env, r, meth.Body)
				wantM := m0.Clone()
				in.AddScross(wantM, meth.Body, r)
				wantO := o0.Clone()
				wantO.UnionWith(r)
				if !m.Equal(wantM) || !o.Equal(wantO) {
					t.Fatalf("%s: Lemma 12 violated for R=%v", meth.Name, r)
				}
			}
		}
	}
}

// R ⊆ O for every judgment (stated below rule (45) in the paper).
func TestRSubsetO(t *testing.T) {
	p := fixtures.Example21()
	c := NewChecker(labels.Compute(p))
	env := c.Infer().Env
	n := p.NumLabels()
	r := intset.Of(n, 0, 2)
	_, o := c.JudgeStmt(env, r, p.Main().Body)
	if !r.SubsetOf(o) {
		t.Fatalf("R ⊄ O: R=%v O=%v", r, o)
	}
}

// Tree typing: rules (46)–(49).
func TestJudgeTree(t *testing.T) {
	p := fixtures.Example22()
	c := NewChecker(labels.Compute(p))
	env := c.Infer().Env
	n := p.NumLabels()
	empty := intset.New(n)

	if !c.JudgeTree(env, empty, tree.Done).Empty() {
		t.Fatalf("√ must type with ∅")
	}

	fBody := p.Methods[0].Body
	if p.Methods[0].Name != "f" {
		fBody = p.Methods[1].Body
	}
	mainBody := p.Main().Body
	lf, lm := tree.NewLeaf(fBody), tree.NewLeaf(mainBody)

	// Leaf typing equals statement typing.
	ms, _ := c.JudgeStmt(env, empty, fBody)
	if !c.JudgeTree(env, empty, lf).Equal(ms) {
		t.Fatalf("⟨s⟩ typing differs from s typing")
	}

	// Par typing includes cross pairs between the two sides.
	mp := c.JudgeTree(env, empty, &tree.Par{L: lf, R: lm})
	a5, _ := p.LabelByName("A5")
	s1, _ := p.LabelByName("S1")
	if !mp.Has(int(a5), int(s1)) {
		t.Fatalf("Par typing missing cross pair (A5,S1)")
	}

	// Fin typing is the union of both sides under the same R: no
	// cross pairs between the sides of ▷ beyond what each generates.
	mf := c.JudgeTree(env, empty, &tree.Fin{L: lf, R: lm})
	if mf.Has(int(a5), int(s1)) {
		t.Fatalf("Fin typing has spurious cross pair (A5,S1)")
	}
}

// Preservation (Lemma 16 / Theorem 2 machinery) is exercised end to
// end in the soundness tests of internal/explore; here we check the
// monotonicity Lemma 15: R′ ⊆ R implies M′ ⊆ M for tree typing.
func TestTreeTypingMonotoneInR(t *testing.T) {
	p := fixtures.Example21()
	c := NewChecker(labels.Compute(p))
	env := c.Infer().Env
	n := p.NumLabels()
	lm := tree.NewLeaf(p.Main().Body)
	small := intset.Of(n, 1)
	big := intset.Of(n, 1, 2, 3)
	mSmall := c.JudgeTree(env, small, lm)
	mBig := c.JudgeTree(env, big, lm)
	if !mSmall.SubsetOf(mBig) {
		t.Fatalf("tree typing not monotone in R")
	}
}

func TestSummaryCloneEqual(t *testing.T) {
	p := fixtures.Example22()
	c := NewChecker(labels.Compute(p))
	env := c.Infer().Env
	s := env[0].Clone()
	if !s.Equal(env[0]) {
		t.Fatalf("clone not equal")
	}
	s.O.Add(0)
	if s.Equal(env[0]) && env[0].O.Has(0) == false {
		t.Fatalf("clone aliases original")
	}
}
