// Package types implements the may-happen-in-parallel type system of
// Section 4 of the paper (Figure 4, rules (45)–(56)).
//
// By the unique-typing lemma (Lemma 8), given a program p, a type
// environment E and a label set R, every statement s has exactly one
// typing p, E, R ⊢ s : M, O — so the type rules are implemented as a
// judgment *computation*. Type checking (⊢ p : E) computes each
// method body's judgment under R = ∅ and compares it with E; direct
// type inference iterates the judgment from the bottom environment
// E₀ = {fᵢ ↦ (∅, ∅)} to its least fixed point, which Theorem 4 makes
// equal to the least solution of the constraint system.
//
// Statement continuations may be absent (nil). The paper's grammar
// makes skip the only statement terminator, but its own examples end
// statements with calls and asyncs; we therefore type an empty
// continuation as (∅, R), which specializes every rule to the
// paper's when the continuation is present and extends it
// conservatively when it is not. See the corresponding note in
// internal/machine.
package types

import (
	"fmt"

	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

// Summary is one method's type: the pair (M, O) of the method's
// may-happen-in-parallel set and the labels of statements that may
// still be executing when a call to the method returns.
type Summary struct {
	M *intset.PairSet
	O *intset.Set
}

// Clone returns an independent copy.
func (s Summary) Clone() Summary {
	return Summary{M: s.M.Clone(), O: s.O.Clone()}
}

// Equal reports whether two summaries are identical.
func (s Summary) Equal(t Summary) bool {
	return s.M.Equal(t.M) && s.O.Equal(t.O)
}

// Env is a type environment E: one summary per method, indexed like
// Program.Methods.
type Env []Summary

// NewEnv returns the bottom environment E₀ = {fᵢ ↦ (∅, ∅)} for a
// program with the given label universe.
func NewEnv(p *syntax.Program) Env {
	n := p.NumLabels()
	ms := intset.NewPairsBatch(n, len(p.Methods))
	os := intset.NewBatch(n, len(p.Methods))
	env := make(Env, len(p.Methods))
	for i := range env {
		env[i] = Summary{M: ms[i], O: os[i]}
	}
	return env
}

// Clone returns an independent copy of the environment. The copies
// are materialized into one batch slab per kind (every summary of an
// environment shares the program's label universe), a word copy per
// summary rather than 2·|methods| allocations.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	if len(e) == 0 {
		return c
	}
	n := e[0].O.Universe()
	ms := intset.NewPairsBatch(n, len(e))
	os := intset.NewBatch(n, len(e))
	for i := range e {
		ms[i].CopyFrom(e[i].M)
		os[i].CopyFrom(e[i].O)
		c[i] = Summary{M: ms[i], O: os[i]}
	}
	return c
}

// Equal reports whether two environments are identical.
func (e Env) Equal(o Env) bool {
	if len(e) != len(o) {
		return false
	}
	for i := range e {
		if !e[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Checker computes typing judgments for one program.
type Checker struct {
	in *labels.Info
	p  *syntax.Program
	n  int
}

// NewChecker returns a Checker using the given Slabels fixpoint.
func NewChecker(in *labels.Info) *Checker {
	return &Checker{in: in, p: in.Program(), n: in.NumLabels()}
}

// Info returns the underlying label info.
func (c *Checker) Info() *labels.Info { return c.in }

// JudgeStmt computes the unique M, O with p, E, R ⊢ s : M, O
// (rules (50)–(56)). R is not mutated; the results are fresh (M is
// drawn from the pair-set pool; callers that discard it may recycle it
// with intset.PairPool.Put).
func (c *Checker) JudgeStmt(env Env, r *intset.Set, s *syntax.Stmt) (*intset.PairSet, *intset.Set) {
	m := intset.PairPool.Get(c.n)
	o := c.judgeInto(m, env, r, s)
	return m, o
}

// judgeInto accumulates the statement's M into m and returns its O.
func (c *Checker) judgeInto(m *intset.PairSet, env Env, r *intset.Set, s *syntax.Stmt) *intset.Set {
	if s == nil {
		return r.Clone()
	}
	i := s.Instr
	k := s.Next
	l := i.Label()
	switch i := i.(type) {
	case *syntax.Skip:
		// Rules (50), (51): M = Lcross(l, R) ∪ M₁, O = O₁.
		c.in.AddLcross(m, l, r)
		return c.judgeInto(m, env, r, k)

	case *syntax.Assign:
		// Rule (52): as for skip.
		c.in.AddLcross(m, l, r)
		return c.judgeInto(m, env, r, k)

	case *syntax.Next:
		// Clock erasure: a barrier synchronizes, so ignoring it (skip
		// rule) can only add MHP pairs — sound. The clocks package
		// refines the result with barrier phases.
		c.in.AddLcross(m, l, r)
		return c.judgeInto(m, env, r, k)

	case *syntax.While:
		// Rule (53): the body is assumed to run at least twice, so it
		// pairs with its own O₁; the continuation starts from O₁.
		o1 := c.judgeInto(m, env, r, i.Body)
		c.in.AddLcross(m, l, o1)
		c.in.AddScross(m, i.Body, o1)
		return c.judgeInto(m, env, o1, k)

	case *syntax.Async:
		// Rule (54): body and continuation each see the other's
		// Slabels added to R.
		rBody := r.Clone()
		rBody.UnionWith(c.in.Slabels(k))
		rCont := r.Clone()
		rCont.UnionWith(c.in.Slabels(i.Body))
		c.in.AddLcross(m, l, r)
		c.judgeInto(m, env, rBody, i.Body)
		return c.judgeInto(m, env, rCont, k)

	case *syntax.Finish:
		// Rule (55): the body's O is discarded — whatever the body
		// spawned has terminated when the continuation starts.
		c.in.AddLcross(m, l, r)
		c.judgeInto(m, env, r, i.Body)
		return c.judgeInto(m, env, r, k)

	case *syntax.Call:
		// Rule (56): splice in the method summary; anything running
		// in parallel with the call may run in parallel with the
		// whole callee body.
		sum := env[i.Method]
		c.in.AddLcross(m, l, r)
		c.in.AddScross(m, c.p.Methods[i.Method].Body, r)
		m.UnionWith(sum.M)
		rk := r.Clone()
		rk.UnionWith(sum.O)
		return c.judgeInto(m, env, rk, k)
	}
	panic(fmt.Sprintf("types: unknown instruction %T", i))
}

// JudgeTree computes the unique M with p, E, R ⊢ T : M
// (rules (46)–(49)).
func (c *Checker) JudgeTree(env Env, r *intset.Set, t tree.Tree) *intset.PairSet {
	m := intset.NewPairs(c.n)
	c.judgeTreeInto(m, env, r, t)
	return m
}

func (c *Checker) judgeTreeInto(m *intset.PairSet, env Env, r *intset.Set, t tree.Tree) {
	switch t := t.(type) {
	case tree.DoneT:
		// Rule (49): √ types with M = ∅.

	case *tree.Fin:
		// Rule (46): both sides under the same R.
		c.judgeTreeInto(m, env, r, t.L)
		c.judgeTreeInto(m, env, r, t.R)

	case *tree.Par:
		// Rule (47): each side's R is extended with the other side's
		// Tlabels.
		rl := r.Clone()
		rl.UnionWith(c.in.Tlabels(t.R))
		rr := r.Clone()
		rr.UnionWith(c.in.Tlabels(t.L))
		c.judgeTreeInto(m, env, rl, t.L)
		c.judgeTreeInto(m, env, rr, t.R)

	case *tree.Leaf:
		// Rule (48): type the statement, discard its O.
		c.judgeInto(m, env, r, t.S)

	default:
		panic(fmt.Sprintf("types: unknown tree %T", t))
	}
}

// MethodSummary computes the summary rule (45) assigns to method mi
// under env: p, E, ∅ ⊢ sᵢ : Mᵢ, Oᵢ.
func (c *Checker) MethodSummary(env Env, mi int) Summary {
	m, o := c.JudgeStmt(env, intset.New(c.n), c.p.Methods[mi].Body)
	return Summary{M: m, O: o}
}

// Check verifies ⊢ p : E (rule (45)): each method body's judgment
// under R = ∅ must equal E's summary for the method. It returns nil
// on success and a descriptive error for the first mismatch.
func (c *Checker) Check(env Env) error {
	if len(env) != len(c.p.Methods) {
		return fmt.Errorf("types: environment has %d summaries for %d methods", len(env), len(c.p.Methods))
	}
	for mi, meth := range c.p.Methods {
		got := c.MethodSummary(env, mi)
		if !got.M.Equal(env[mi].M) {
			return fmt.Errorf("types: method %q: M mismatch (judged %d pairs, env %d pairs)",
				meth.Name, got.M.Len(), env[mi].M.Len())
		}
		if !got.O.Equal(env[mi].O) {
			return fmt.Errorf("types: method %q: O mismatch (judged %v, env %v)",
				meth.Name, got.O, env[mi].O)
		}
		intset.PairPool.Put(got.M) // judged copy is checked and dead
	}
	return nil
}

// InferResult is the outcome of direct type inference.
type InferResult struct {
	Env        Env
	Iterations int // fixpoint passes, including the final stable one
}

// Infer computes the least type environment E with ⊢ p : E by
// iterating rule (45) from the bottom environment: the judgment is
// monotone in E over a finite lattice, so the iteration reaches the
// least fixed point (Theorems 5 and 6 via Theorem 4).
func (c *Checker) Infer() InferResult {
	env := NewEnv(c.p)
	iters := 0
	for {
		iters++
		changed := false
		next := make(Env, len(env))
		for mi := range c.p.Methods {
			next[mi] = c.MethodSummary(env, mi)
			if !next[mi].Equal(env[mi]) {
				changed = true
			}
		}
		// The superseded environment's pair sets are dead once next is
		// built; recycle them for the following pass's judgments.
		for _, s := range env {
			intset.PairPool.Put(s.M)
		}
		env = next
		if !changed {
			return InferResult{Env: env, Iterations: iters}
		}
	}
}
