// Untracked-spawn mix: a detached goroutine before the span and
// another inside the tracked task. The outer span's own goroutine is
// fully tracked, but the nested bare go escapes the join — the front
// end must stay conservative about it rather than fold it into the
// finish.
package main

import "sync"

func audit()  {}
func serve()  {}
func handle() {}

func main() {
	go audit()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		go audit()
		serve()
	}()
	wg.Wait()
	handle()
}
