// errgroup fan-out: g.Go tracks each task by construction, so the
// span is a finish even without explicit Add/Done bookkeeping.
package main

import "golang.org/x/sync/errgroup"

func fetchA() {}
func fetchB() {}

func main() {
	var g errgroup.Group
	g.Go(func() {
		fetchA()
	})
	g.Go(fetchB)
	g.Wait()
	fetchA()
}
