// Worker pool: channel operations are dropped conservatively (skips
// with diagnostics); the spawn/join structure is still captured.
package main

import "sync"

func process() {}

func main() {
	jobs := make(chan int, 4)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				process()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
