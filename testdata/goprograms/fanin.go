// Channel fan-in: producers tracked by a WaitGroup feed one results
// channel, drained after the join. The sends are dropped
// conservatively (channel-send diagnostic); the spawn/join structure
// still lowers to a finish over a loop async.
package main

import "sync"

func produce() {}
func consume() {}

func main() {
	results := make(chan int, 8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			produce()
			results <- 1
		}()
	}
	wg.Wait()
	close(results)
	for range results {
		consume()
	}
}
