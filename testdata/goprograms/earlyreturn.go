// errgroup with an early return: one task bails out mid-body. The
// return only shortens that task's trace — the span is still a finish
// (errgroup tracks the task regardless of how it exits), and the
// analysis must keep the post-return statements inside the async.
package main

import "golang.org/x/sync/errgroup"

func fetch()    {}
func validate() {}

func main() {
	var g errgroup.Group
	g.Go(func() {
		fetch()
		if true {
			return
		}
		validate()
	})
	g.Go(func() {
		validate()
	})
	g.Wait()
	fetch()
}
