// Mixed structure: a detached goroutine (plain async, never joined),
// a tracked WaitGroup span, and control flow around both.
package main

import "sync"

func log() {}
func compute() {}

func main() {
	go log() // detached: may run in parallel with everything below

	var wg sync.WaitGroup
	if true {
		wg.Add(1)
		go func() {
			defer wg.Done()
			compute()
		}()
	}
	wg.Wait()

	switch 0 {
	case 0:
		compute()
	default:
		log()
	}
}
