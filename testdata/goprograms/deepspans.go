// Deeply nested spans: an inner WaitGroup fan-out inside each task of
// an outer WaitGroup fan-out — finish over loop async, again, one
// level down. Exercises finish-in-async-in-finish with loops at both
// levels.
package main

import "sync"

func prep()  {}
func work()  {}
func flush() {}

func main() {
	var outer sync.WaitGroup
	for b := 0; b < 3; b++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			prep()
			var inner sync.WaitGroup
			for i := 0; i < 2; i++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					work()
				}()
			}
			inner.Wait()
			flush()
		}()
	}
	outer.Wait()
	flush()
}
