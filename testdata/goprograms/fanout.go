// Fan-out/fan-in: N workers spawned in a loop, all registered with
// the WaitGroup — the span lowers to a finish over a loop async.
package main

import "sync"

func work() {}

func main() {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
	work()
}
