// Nested spans: an inner WaitGroup scope inside an outer goroutine —
// finish inside async inside finish.
package main

import "sync"

func stage1() {}
func stage2() {}

func main() {
	var outer sync.WaitGroup
	outer.Add(1)
	go func() {
		defer outer.Done()
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
			stage1()
		}()
		inner.Wait()
		stage2()
	}()
	outer.Wait()
}
