// A WaitGroup span with an untracked goroutine: the front end must
// NOT claim a finish here (the bare go may outlive Wait), so the span
// lowers scope-less with a diagnostic — the conservative direction.
package main

import "sync"

func tracked() {}
func untracked() {}

func main() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tracked()
	}()
	go untracked()
	wg.Wait()
	tracked()
}
