// Escape sequences inside literals: \" does not close a string,
// '\'' is a quote char, '\\' a backslash.
public class C {
  static char quote = '\'';
  static char backslash = '\\';
  static String esc = "quote \" backslash \\ brace } paren ) semi ;";

  static void main(String[] args) {
    f('\\', "tail \" }");
    finish {
      async { f("{'\"'}"); }
    }
  }

  static void f() { return; }
}
