// Strings and char literals containing code-looking text must not
// confuse the skipper: no async/finish below is real except the one
// in main.
public class C {
  static String msg = "finish { async { bogus(); } } ; // not code";
  static char open = '{';
  static char close = '}';

  static void main(String[] args) {
    if (eq(msg, "}{;()")) {
      helper("a;b", '(', "deep } nest {");
    }
    async { helper("async { inside string }"); }
  }

  static void helper() { return; }
}
