// Code-looking text inside Go strings: the front end must lower the
// one real spawn and nothing from the literals.
package main

import "sync"

const banner = "go func() { wg.Wait() } // not code"

func work() {}

func main() {
	msg := "var wg sync.WaitGroup; wg.Wait()"
	_ = msg
	var wg sync.WaitGroup
	wg.Go(func() {
		work()
	})
	wg.Wait()
}
