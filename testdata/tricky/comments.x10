// Comments inside skipped regions: conditions, arguments, statements.
public class C {
  static void main(String[] args) {
    // a line comment with } and { and ; and async {
    /* a block comment
       with finish { async { } }
       spanning lines */
    while (x /* } */ > 0 /* ( */) {
      work(); // trailing } brace
    }
    if (flag /* ; */) {
      work();
    }
  }

  static void work() { return; }
}
