// Case labels whose literal contains a colon, brace or semicolon:
// the label scanner must find the real ':' terminator.
public class C {
  static void main(String[] args) {
    switch (tag) {
      case ':':
        f();
        break;
      case '}':
        g();
        break;
      case "a:b;{": {
        f();
        break;
      }
      default:
        break;
    }
  }

  static void f() { return; }
  static void g() { return; }
}
