// An X10-subset input for cmd/x10c: a small pipeline with foreach
// parallelism, a place-switching exchange, and sequential phases.
public class pipeline {
  static int chunk = 64;

  static void load() {
    for (int i = 0; i < n; i++) {
      buf[i] = src[i];
    }
  }

  static void map() {
    foreach (point p : dist) {
      out[p] = f(buf[p]);
    }
  }

  static void exchange() {
    finish {
      async (there) {
        remote = out;
      }
    }
  }

  static void reduce() {
    acc = 0;
    for (int i = 0; i < n; i++) {
      acc = acc + out[i];
    }
    if (acc < 0) {
      acc = 0;
    }
    return;
  }

  public static void main(String[] args) {
    load();
    finish { map(); }
    exchange();
    reduce();
    return;
  }
}
