package fx10_test

import (
	"fmt"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/experiments"
	"fx10/internal/explore"
	"fx10/internal/fixtures"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/machine"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/runtime"
	"fx10/internal/syntax"
	"fx10/internal/types"
	"fx10/internal/workloads"
	"fx10/internal/x10"
)

// ---------------------------------------------------------------
// Worked examples (Sections 2.1, 2.2; Figure 5).

// BenchmarkExample1Inference measures end-to-end inference on the
// Section 2.1 example whose constraint system is the paper's
// Figure 5.
func BenchmarkExample1Inference(b *testing.B) {
	p := fixtures.Example21()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mhp.MustAnalyze(p, constraints.ContextSensitive)
	}
}

// BenchmarkExample2Inference measures the Section 2.2 interprocedural
// example.
func BenchmarkExample2Inference(b *testing.B) {
	p := fixtures.Example22()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mhp.MustAnalyze(p, constraints.ContextSensitive)
	}
}

// ---------------------------------------------------------------
// Figure 6: constraint generation per benchmark.

// BenchmarkConstraintGenFig6 measures Slabels fixpoint plus
// constraint generation (the static-measurement pipeline of
// Figure 6) for every benchmark.
func BenchmarkConstraintGenFig6(b *testing.B) {
	for _, wl := range workloads.All() {
		p := wl.Program()
		b.Run(wl.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in := labels.Compute(p)
				sys := constraints.Generate(in, constraints.ContextSensitive)
				sl, l1, l2 := sys.Counts()
				if sl == 0 || l1 == 0 || l2 == 0 {
					b.Fatal("empty system")
				}
			}
		})
	}
}

// ---------------------------------------------------------------
// Figure 7: front-end node counting per benchmark.

// BenchmarkNodeCountsFig7 measures X10-subset parsing and condensed
// node counting (the Figure 7 pipeline).
func BenchmarkNodeCountsFig7(b *testing.B) {
	for _, wl := range workloads.All() {
		src := wl.Source()
		b.Run(wl.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				unit, _, err := x10.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				if unit.NodeCounts().Total == 0 {
					b.Fatal("no nodes")
				}
			}
		})
	}
}

// ---------------------------------------------------------------
// Figure 8: full context-sensitive inference per benchmark.

// BenchmarkInferenceFig8 measures the full inference pipeline
// (Slabels + generation + three-phase solving + pair
// classification), one sub-benchmark per Figure 8 row.
func BenchmarkInferenceFig8(b *testing.B) {
	for _, wl := range workloads.All() {
		p := wl.Program()
		want := wl.Paper
		b.Run(wl.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := mhp.MustAnalyze(p, constraints.ContextSensitive)
				c := mhp.CountPairs(r.AsyncBodyPairs())
				if c.Total == 0 && want.PairsTotal != 0 {
					b.Fatal("no pairs")
				}
			}
		})
	}
}

// ---------------------------------------------------------------
// Figure 9: context-sensitive vs context-insensitive on mg and
// plasma.

// BenchmarkContextInsensitiveFig9 measures both analyses on the two
// large benchmarks, the Figure 9 comparison.
func BenchmarkContextInsensitiveFig9(b *testing.B) {
	for _, name := range []string{"mg", "plasma"} {
		wl, err := workloads.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		p := wl.Program()
		for _, mode := range []constraints.Mode{constraints.ContextSensitive, constraints.ContextInsensitive} {
			mode := mode
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mhp.MustAnalyze(p, mode)
				}
			})
		}
	}
}

// ---------------------------------------------------------------
// Ablations called out in DESIGN.md.

// BenchmarkSolverPhased vs BenchmarkSolverMonolithic: the Section 5.3
// three-phase optimization against solving everything jointly.
func BenchmarkSolverPhased(b *testing.B) {
	benchSolver(b, constraints.Options{})
}

// BenchmarkSolverMonolithic is the ablation baseline for
// BenchmarkSolverPhased.
func BenchmarkSolverMonolithic(b *testing.B) {
	benchSolver(b, constraints.Options{Monolithic: true})
}

func benchSolver(b *testing.B, opts constraints.Options) {
	wl, err := workloads.Get("mg")
	if err != nil {
		b.Fatal(err)
	}
	sys := constraints.Generate(labels.Compute(wl.Program()), constraints.ContextSensitive)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Solve(opts)
	}
}

// BenchmarkDirectTypeInference: inferring E by iterating the type
// rules directly (the specification) instead of solving constraints
// (the implementation technique) — the paper's "slogan" trade-off.
func BenchmarkDirectTypeInference(b *testing.B) {
	wl, err := workloads.Get("mg")
	if err != nil {
		b.Fatal(err)
	}
	in := labels.Compute(wl.Program())
	c := types.NewChecker(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Infer()
	}
}

// BenchmarkSlabelsFixpoint isolates phase 1 of the solver.
func BenchmarkSlabelsFixpoint(b *testing.B) {
	wl, err := workloads.Get("plasma")
	if err != nil {
		b.Fatal(err)
	}
	p := wl.Program()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		labels.Compute(p)
	}
}

// ---------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkMachineRun measures the formal small-step interpreter on
// the Section 2.1 example.
func BenchmarkMachineRun(b *testing.B) {
	p := fixtures.Example21()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := machine.Run(p, machine.Initial(p, nil), machine.Leftmost{}, 100000)
		if !res.Done {
			b.Fatal("did not finish")
		}
	}
}

// BenchmarkExploreExample21 measures exhaustive interleaving
// exploration (the ground-truth oracle of Section 6).
func BenchmarkExploreExample21(b *testing.B) {
	p := fixtures.Example21()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := explore.MHP(p, nil, 1_000_000)
		if !res.Complete {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkRuntimeFanout measures the goroutine runtime on a fork-
// join fan-out.
func BenchmarkRuntimeFanout(b *testing.B) {
	p := parser.MustParse(`
array 8;
void w0() { async { a[0] = 1; } }
void w1() { async { a[1] = 1; } }
void w2() { async { a[2] = 1; } }
void w3() { async { a[3] = 1; } }
void main() {
  finish { w0(); w1(); w2(); w3(); }
}
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Run(p, nil, runtime.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairSetCrossSym measures the symcross kernel that
// dominates level-2 solving.
func BenchmarkPairSetCrossSym(b *testing.B) {
	const n = 2048
	a := intset.New(n)
	c := intset.New(n)
	for i := 0; i < n; i += 3 {
		a.Add(i)
	}
	for i := 1; i < n; i += 5 {
		c.Add(i)
	}
	ps := intset.NewPairs(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.CrossSym(a, c)
	}
}

// BenchmarkSolverWorklist is the third solving strategy: phased with
// change-driven re-evaluation instead of whole passes.
func BenchmarkSolverWorklist(b *testing.B) {
	benchSolver(b, constraints.Options{Worklist: true})
}

// BenchmarkSolverTopo is the fourth strategy: SCC-condensed
// topological propagation with copy elision — each constraint
// evaluated at most once, whole alias chains solved as one value.
// Compare allocs/op against BenchmarkSolverWorklist.
func BenchmarkSolverTopo(b *testing.B) {
	benchSolver(b, constraints.Options{Topo: true})
}

// BenchmarkEngineCorpus measures analyzing the whole 13-benchmark
// corpus through the engine, sequentially and on the worker pool —
// the perf trajectory every later scaling PR is measured against.
// Caching is off so every iteration re-solves.
func BenchmarkEngineCorpus(b *testing.B) {
	jobs := make([]engine.Job, 0, 13)
	for _, wl := range workloads.All() {
		jobs = append(jobs, engine.Job{Name: wl.Name, Program: wl.Program()})
	}
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0}, // 0 = GOMAXPROCS
	} {
		b.Run(cfg.name, func(b *testing.B) {
			eng := engine.MustNew(engine.Config{Workers: cfg.workers, CacheSize: -1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, cr := range eng.AnalyzeCorpus(jobs) {
					if cr.Err != nil {
						b.Fatal(cr.Err)
					}
				}
			}
		})
	}
}

// BenchmarkEngineCacheHit measures the cache-served path: the cost of
// re-requesting an already-solved program (content hash + LRU lookup
// + summary extraction).
func BenchmarkEngineCacheHit(b *testing.B) {
	wl, err := workloads.Get("mg")
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.MustNew(engine.Config{CacheSize: 16})
	job := engine.Job{Name: wl.Name, Program: wl.Program()}
	if _, err := eng.Analyze(job); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Analyze(job)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stats.CacheHit {
			b.Fatal("cache miss")
		}
	}
}

// BenchmarkEngineDelta measures incremental re-analysis after a
// single-method edit (append one skip) against solving the edited
// program from scratch, on the largest benchmark. Caching is off so
// the delta solver itself is measured, not the program cache.
func BenchmarkEngineDelta(b *testing.B) {
	wl, err := workloads.Get("mg")
	if err != nil {
		b.Fatal(err)
	}
	p := wl.Program()
	eng := engine.MustNew(engine.Config{CacheSize: -1})
	base, err := eng.Analyze(engine.Job{Name: wl.Name, Program: p})
	if err != nil {
		b.Fatal(err)
	}
	edited := progen.AppendSkip(p, 0)
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.AnalyzeDelta(base, edited)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Delta.Full {
				b.Fatal("delta fell back to a full solve")
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Analyze(engine.Job{Name: wl.Name, Program: edited}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScaling measures the full pipeline on the three
// size-parameterized families of the scaling study at a fixed size.
func BenchmarkScaling(b *testing.B) {
	progs := map[string]*syntax.Program{
		"chain200": experiments.ChainProgram(200),
		"wide200":  experiments.WideProgram(200),
		"loops200": experiments.LoopsProgram(200),
	}
	for _, name := range []string{"chain200", "wide200", "loops200"} {
		p := progs[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in := labels.Compute(p)
				constraints.Generate(in, constraints.ContextSensitive).Solve(constraints.Options{})
			}
		})
	}
}
