module fx10

go 1.22
